"""Differential scheduler suite: cross-policy invariants on live runs.

Every policy runs a full (small) experiment under an *instrumented*
scheduler subclass that records each request decision as it is made, so
the invariants are checked against the actual protocol execution — not a
re-derivation:

* **all policies** — a request is only ever issued for a chunk the probe
  is missing (request set ⊆ hole set) and never for a chunk already in
  flight (no duplicate in-flight requests);
* **rarest**      — every requested chunk was advertised by the chosen
  provider's buffer map at request time;
* **edf**         — within one tick a probe's requests are monotone in
  playout deadline, and no request is issued past its deadline;
* **push**        — a chunk is only pushed to a probe that neither holds
  it nor has it in flight (duplicate suppression).

The instrumented subclasses add observation only — every decision is
delegated to the real policy code — so the runs also double as living
documentation of the scheduler extension points.
"""

from dataclasses import replace

import pytest

from repro.streaming.engine import EngineConfig, simulate
from repro.streaming.profiles import get_profile
from repro.streaming.schedulers import (
    SCHEDULER_NAMES,
    SCHEDULERS,
    EdfScheduler,
    MeshPullScheduler,
    PushEpidemicScheduler,
    RarestFirstScheduler,
)
from repro.streaming.schedulers.edf import playout_deadline

SMALL = dict(duration_s=20.0, seed=1234)


def small_profile(scheduler: str):
    return replace(get_profile("tvants").scaled(0.4), scheduler=scheduler)


# ------------------------------------------------------- instrumentation
class _RecordingMixin:
    """Record every request the wrapped policy issues, as it issues it.

    Wraps ``engine._request_chunk`` for the duration of each
    ``schedule_requests`` call (schedulers look the method up dynamically,
    which is the designed test seam) and asserts the universal invariants
    inline, where the full decision context still exists.
    """

    #: Every instance the engine constructs, newest last (the engine
    #: instantiates its scheduler internally; tests read the recording
    #: back through this class attribute).
    instances: list

    def __init_subclass__(cls, **kw):
        super().__init_subclass__(**kw)
        cls.instances = []

    def __init__(self):
        type(self).instances.append(self)
        #: One entry per tick that issued requests:
        #: (t, probe_gidx, hole list, window_chunks, [(provider, chunk)]).
        self.ticks = []

    def check_request(self, probe, provider: int, chunk: int, t: float) -> None:
        """Per-policy extension point, called before each request."""

    def _recorded_call(self, call, probe, t, lookahead, partners, slots):
        eng = self._engine
        orig = eng._request_chunk
        holes = list(lookahead)
        hole_set = set(holes)
        issued = []

        def spy(p, provider, chunk, tt):
            assert p is probe
            assert chunk in hole_set, "requested a chunk that is not missing"
            assert chunk not in p.inflight, "duplicate in-flight request"
            assert chunk not in p.chunks, "requested a chunk already held"
            self.check_request(p, provider, chunk, tt)
            issued.append((provider, chunk))
            return orig(p, provider, chunk, tt)

        eng._request_chunk = spy
        try:
            call(probe, t, holes, partners, slots)
        finally:
            del eng.__dict__["_request_chunk"]
        if issued:
            self.ticks.append(
                (t, probe.gidx, holes, probe.buffer.window_chunks, issued)
            )

    def schedule_requests(self, probe, t, lookahead, partners, slots):
        self._recorded_call(
            super().schedule_requests, probe, t, lookahead, partners, slots
        )

    def schedule_requests_soa(self, probe, t, lookahead, partners, slots):
        # The SoA engine routes ticks here; the spy and the inline
        # invariants run identically (the views answer the membership
        # asserts), so the recorded trace is representation-independent.
        self._recorded_call(
            super().schedule_requests_soa, probe, t, lookahead, partners, slots
        )


class RecordingMesh(_RecordingMixin, MeshPullScheduler):
    pass


class RecordingRarest(_RecordingMixin, RarestFirstScheduler):
    def __init__(self):
        super().__init__()
        self._current_ads = {}

    def _snapshot_ads(self, probe, t, lookahead, partners):
        # The ground-truth buffer map this tick's decisions will see;
        # _advertised is a pure read (no RNG), so recomputing it here
        # cannot perturb the run.  Works under both engine cores — the
        # object-path partner context reads SoA probes through the views.
        eng = self._engine
        ctx = eng._partner_context(probe.gidx - eng.n_remote, partners)
        self._current_ads = {
            c: set(self._advertised(probe, t, c, ctx)) for c in lookahead
        }

    def schedule_requests(self, probe, t, lookahead, partners, slots):
        self._snapshot_ads(probe, t, lookahead, partners)
        super().schedule_requests(probe, t, lookahead, partners, slots)

    def schedule_requests_soa(self, probe, t, lookahead, partners, slots):
        self._snapshot_ads(probe, t, lookahead, partners)
        super().schedule_requests_soa(probe, t, lookahead, partners, slots)

    def check_request(self, probe, provider, chunk, t):
        assert provider in self._current_ads.get(chunk, ()), (
            f"rarest requested chunk {chunk} from {provider}, "
            "which did not advertise it"
        )


class RecordingEdf(_RecordingMixin, EdfScheduler):
    def check_request(self, probe, provider, chunk, t):
        interval = self._engine._av_chunk_interval
        deadline = playout_deadline(chunk, interval, probe.buffer.window_chunks)
        assert deadline > t, (
            f"edf requested chunk {chunk} after its playout deadline "
            f"({deadline:.3f} <= {t:.3f})"
        )


class RecordingPush(_RecordingMixin, PushEpidemicScheduler):
    def __init__(self):
        super().__init__()
        self.push_count = 0

    def on_chunk_received(self, probe, chunk, provider, t):
        eng = self._engine
        before = [
            (st, chunk in st.inflight, chunk in st.chunks) for st in eng._probes
        ]
        super().on_chunk_received(probe, chunk, provider, t)
        for st, was_inflight, was_held in before:
            if st is probe or was_inflight:
                continue
            if chunk in st.inflight:  # newly pushed to this target
                assert not was_held, "pushed a chunk the target already held"
                self.push_count += 1


_RECORDERS = {
    "mesh-pull": RecordingMesh,
    "rarest": RecordingRarest,
    "edf": RecordingEdf,
    "push": RecordingPush,
}


def _recorded_run(name: str):
    """Simulate one small experiment under the instrumented policy."""
    recorder = _RECORDERS[name]
    original = SCHEDULERS[name]
    SCHEDULERS[name] = recorder
    try:
        result = simulate(
            small_profile(name), engine_config=EngineConfig(**SMALL)
        )
    finally:
        SCHEDULERS[name] = original
    return result, recorder.instances[-1]


@pytest.fixture(scope="module")
def runs():
    """Memoised access to one instrumented run per policy."""
    cache = {}

    def get(name: str):
        if name not in cache:
            cache[name] = _recorded_run(name)
        return cache[name]

    return get


@pytest.fixture(scope="module", params=sorted(SCHEDULER_NAMES))
def recorded(request, runs):
    """(policy name, result, recording) for each policy — run once each."""
    result, recording = runs(request.param)
    return request.param, result, recording


# ------------------------------------------------------------ invariants
def test_every_policy_name_has_a_recorder():
    assert set(_RECORDERS) == set(SCHEDULER_NAMES)


def test_policy_issues_requests_and_streams(recorded):
    """Inline asserts only bite if requests actually happen — prove they do."""
    name, result, recording = recorded
    assert recording.ticks, f"{name}: no pull requests were ever issued"
    assert len(result.transfers) > 1000, f"{name}: streaming collapsed"


def test_requests_are_subset_of_holes(recorded):
    """request set ⊆ hole set, re-checked from the recorded ticks."""
    name, _result, recording = recorded
    for _t, _probe, holes, _window, issued in recording.ticks:
        hole_set = set(holes)
        for _provider, chunk in issued:
            assert chunk in hole_set


def test_no_duplicate_requests_within_a_tick(recorded):
    name, _result, recording = recorded
    for _t, _probe, _holes, _window, issued in recording.ticks:
        chunks = [c for _p, c in issued]
        assert len(chunks) == len(set(chunks)), (
            f"{name}: same chunk requested twice in one tick"
        )


def test_edf_requests_are_deadline_monotone(runs):
    """Within a tick, EDF's request sequence never goes back in deadline."""
    _result, recording = runs("edf")
    checked = 0
    for _t, _probe, _holes, _window, issued in recording.ticks:
        chunks = [c for _p, c in issued]
        # deadline(c) is strictly increasing in c, so deadline order == id order
        assert chunks == sorted(chunks)
        checked += len(chunks)
    assert checked > 0


def test_push_actually_pushes(runs):
    _result, recording = runs("push")
    assert recording.push_count > 100, "push policy forwarded almost nothing"


# ------------------------------------------------- configuration errors
class TestConfigurationRejection:
    def test_get_scheduler_rejects_unknown_name(self):
        from repro.errors import ConfigurationError
        from repro.streaming.schedulers import get_scheduler

        with pytest.raises(ConfigurationError) as exc:
            get_scheduler("bittorrent")
        message = str(exc.value)
        assert "bittorrent" in message
        for name in SCHEDULER_NAMES:
            assert name in message

    def test_profile_rejects_unknown_scheduler(self):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError, match="valid choices"):
            replace(get_profile("tvants"), scheduler="bittorrent")

    def test_campaign_config_rejects_unknown_scheduler(self):
        from repro.errors import ConfigurationError
        from repro.experiments.campaign import CampaignConfig

        with pytest.raises(ConfigurationError, match="valid choices"):
            CampaignConfig(scheduler="bittorrent")

    def test_campaign_config_env_default(self, monkeypatch):
        from repro.experiments.campaign import CampaignConfig
        from repro.streaming.schedulers import ENV_SCHEDULER

        monkeypatch.delenv(ENV_SCHEDULER, raising=False)
        assert CampaignConfig().scheduler == "mesh-pull"
        monkeypatch.setenv(ENV_SCHEDULER, "rarest")
        assert CampaignConfig().scheduler == "rarest"

    def test_every_profile_defaults_to_mesh_pull(self):
        from repro.streaming.profiles import PROFILES

        for name in PROFILES:
            assert get_profile(name).scheduler == "mesh-pull"


# ------------------------------------------------- awareness recovery
class TestAwarenessRecoveryUnderEveryPolicy:
    """The paper's framework is scheduler-independent.

    The P/B preference indices see only traffic, never the simulator's
    selection weights — so embedded awareness must be recovered (and
    absent awareness must score ≈ uniform) no matter which chunk
    scheduler moved the bytes.  This is the acceptance criterion of the
    scheduler extension: policies change *which* chunks flow when, not
    *who* the application prefers to exchange them with.
    """

    @staticmethod
    def _as_scores(profile, scheduler):
        from repro import analyze_experiment

        result = simulate(
            replace(profile, scheduler=scheduler), duration_s=100.0, seed=31
        )
        return analyze_experiment(result)["AS"].download

    @pytest.mark.parametrize("scheduler", sorted(SCHEDULER_NAMES))
    def test_embedded_as_bias_recovered(self, scheduler):
        base = get_profile("random")
        from repro.streaming import SelectionWeights

        aware = replace(
            base,
            name="as-aware",
            partner_weights=SelectionWeights(bw=1.8, as_=1.2),
            provider_weights=SelectionWeights(bw=2.2, as_=2.4),
            discovery_as_bias=3.0,
        )
        scores = self._as_scores(aware, scheduler)
        # Observed across policies: B' in [15.7, 27.3], P' in [11.1, 14.8].
        assert scores.B_prime > 8.0, f"{scheduler}: AS bias went undetected"
        assert scores.B_prime > 1.2 * scores.P_prime, (
            f"{scheduler}: byte preference did not exceed peer preference"
        )

    @pytest.mark.parametrize("scheduler", sorted(SCHEDULER_NAMES))
    def test_oblivious_app_stays_near_uniform(self, scheduler):
        scores = self._as_scores(get_profile("random"), scheduler)
        # Observed across policies: B' in [1.2, 3.9], B' − P' ≤ 2.2.
        assert scores.B_prime < 6.0, (
            f"{scheduler}: the scheduler itself induced a phantom AS preference"
        )
        assert abs(scores.B_prime - scores.P_prime) < 3.0
