"""SoA-vs-object differential suite: the two engine cores are one engine.

The struct-of-arrays core (:mod:`repro.streaming.soa`) re-implements the
per-probe hot paths against shared numpy arrays; its contract is *byte
identity* — for any fixed seed both cores must emit the same transfer
and signaling bytes, process the same number of events, and dispatch the
same per-kind event counts.  Three layers pin that here:

* the golden fixtures (produced by the pre-SoA object engine) are
  replayed under ``engine="soa"`` — all three app profiles and all four
  chunk schedulers;
* a randomized sweep (seeded parameter draws: app × scheduler × engine
  seed × duration × scale) runs both cores and compares full digests
  plus the dispatch counters;
* the engine registry itself (unknown names rejected, ``REPRO_ENGINE``
  honoured, result extras tagged with the mode that actually ran).

See ``docs/engine-internals.md`` for the determinism rules that make
byte identity possible, and for how to extend this suite.
"""

import json
import random
from dataclasses import replace

import pytest

from repro.errors import ConfigurationError
from repro.streaming.engine import Engine, EngineConfig, simulate
from repro.streaming.profiles import get_profile
from repro.streaming.schedulers import SCHEDULER_NAMES
from repro.streaming.soa import (
    DEFAULT_ENGINE,
    ENGINE_NAMES,
    SoAEngine,
    default_engine,
    get_engine,
)
from repro.trace.store import trace_digest

from tests.golden.regen_engine import (
    ENGINE_GOLDEN_APPS,
    ENGINE_GOLDEN_KWARGS,
    HASHES_PATH,
    SCHEDULER_GOLDEN_APP,
    SCHEDULER_GOLDEN_KWARGS,
    SCHEDULER_GOLDEN_SCALE,
    SCHEDULER_HASHES_PATH,
)


def _digests(result) -> dict:
    """Everything the byte-identity contract covers, as one dict."""
    stats = result.extras["engine_stats"]
    return {
        "transfers": trace_digest(result.transfers),
        "signaling": trace_digest(result.signaling),
        "hosts": trace_digest(result.hosts.rows),
        "events": result.events_processed,
        "dispatch_by_kind": stats["dispatch_by_kind"],
        "schedule_by_kind": stats["schedule_by_kind"],
    }


# ----------------------------------------------------- golden fixtures, SoA
@pytest.fixture(scope="module")
def golden():
    return json.loads(HASHES_PATH.read_text())


@pytest.fixture(scope="module")
def scheduler_golden():
    return json.loads(SCHEDULER_HASHES_PATH.read_text())


@pytest.mark.parametrize("app", ENGINE_GOLDEN_APPS)
def test_soa_matches_engine_golden_hashes(app, golden):
    """The SoA core reproduces the pre-SoA object engine's bytes per app."""
    result = simulate(
        get_profile(app),
        engine_config=EngineConfig(**ENGINE_GOLDEN_KWARGS),
        engine="soa",
    )
    expected = golden["hashes"][app]
    actual = {
        "transfers": trace_digest(result.transfers),
        "signaling": trace_digest(result.signaling),
        "hosts": trace_digest(result.hosts.rows),
        "events": result.events_processed,
    }
    assert actual == expected, (
        f"{app}: the SoA core drifted from the object engine's golden "
        "hashes — an array kernel perturbed an RNG draw or record order"
    )
    assert result.extras["engine_mode"] == "soa"


@pytest.mark.parametrize("scheduler", sorted(SCHEDULER_NAMES))
def test_soa_matches_scheduler_golden_hashes(scheduler, scheduler_golden):
    """Every chunk-scheduling policy is byte-identical under the SoA core."""
    profile = replace(
        get_profile(SCHEDULER_GOLDEN_APP).scaled(SCHEDULER_GOLDEN_SCALE),
        scheduler=scheduler,
    )
    result = simulate(
        profile,
        engine_config=EngineConfig(**SCHEDULER_GOLDEN_KWARGS),
        engine="soa",
    )
    expected = scheduler_golden["hashes"][scheduler]
    actual = {
        "transfers": trace_digest(result.transfers),
        "signaling": trace_digest(result.signaling),
        "hosts": trace_digest(result.hosts.rows),
        "events": result.events_processed,
    }
    assert actual == expected, (
        f"{scheduler}: the SoA scheduler kernel drifted from the object "
        "policy's golden hashes"
    )


# ------------------------------------------------------- randomized sweep
def _random_cases(n: int) -> list[tuple[str, str, int, float, float]]:
    """Seeded parameter draws — stable across runs, diverse across cases."""
    rng = random.Random(20260808)
    cases = []
    for _ in range(n):
        cases.append(
            (
                rng.choice(ENGINE_GOLDEN_APPS),
                rng.choice(sorted(SCHEDULER_NAMES)),
                rng.randrange(1, 10_000),
                round(rng.uniform(8.0, 14.0), 1),
                round(rng.uniform(0.35, 0.6), 2),
            )
        )
    return cases


@pytest.mark.parametrize(
    "app,scheduler,seed,duration_s,scale",
    _random_cases(6),
    ids=lambda v: str(v),
)
def test_randomized_soa_object_differential(app, scheduler, seed, duration_s, scale):
    """Both cores, same seed → same bytes, same events, same dispatches."""
    profile = replace(get_profile(app).scaled(scale), scheduler=scheduler)
    config = EngineConfig(duration_s=duration_s, seed=seed)
    obj = simulate(profile, engine_config=config, engine="object")
    soa = simulate(profile, engine_config=config, engine="soa")
    assert _digests(soa) == _digests(obj), (
        f"{app}/{scheduler} seed={seed}: the SoA core diverged from the "
        "object engine"
    )
    assert obj.extras["engine_mode"] == "object"
    assert soa.extras["engine_mode"] == "soa"


# -------------------------------------------------------- engine registry
class TestEngineRegistry:
    def test_registry_names(self):
        assert ENGINE_NAMES == ("object", "soa")
        assert DEFAULT_ENGINE == "object"

    def test_get_engine_resolves_classes(self, monkeypatch):
        monkeypatch.delenv("REPRO_ENGINE", raising=False)
        assert get_engine("object") is Engine
        assert get_engine("soa") is SoAEngine
        assert get_engine(None) is Engine  # default, no env override

    def test_unknown_engine_rejected(self):
        with pytest.raises(ConfigurationError):
            get_engine("aos")

    def test_env_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_ENGINE", "soa")
        assert default_engine() == "soa"
        assert get_engine(None) is SoAEngine

    def test_env_unknown_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_ENGINE", "vliw")
        with pytest.raises(ConfigurationError):
            get_engine(None)

    def test_explicit_name_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_ENGINE", "soa")
        assert get_engine("object") is Engine
