"""SoAState unit laws: slot mapping, sliding base, resize-on-churn.

The shared bitmaps address chunk ``c`` of probe ``pi`` at column
``c - base[pi]``; these tests pin the mapping and every way it moves —
eviction wipes, base shifts (with the low-set rescue of late arrivals),
the shared widen under churn backlogs, and the always-False guard
columns the availability gather clamps into.  The byte-identity proof
lives in ``test_soa_differential.py``; this file covers the state
machine underneath it in isolation.
"""

import pytest

from repro.errors import SimulationError
from repro.streaming.soa import _GUARD, SoAState, _ChunkSetView, _InflightView


@pytest.fixture
def soa():
    # window 8, margin 4 → capacity 76 (window + margin + 64 slack).
    return SoAState(n_probes=3, window_chunks=8, interval=1.0, margin=4)


class TestSlotMapping:
    def test_capacity_and_guard(self, soa):
        assert soa.capacity == 8 + 4 + 64
        assert soa.have.shape == (3, soa.capacity + _GUARD)
        assert soa.inflight.shape == soa.have.shape

    def test_have_roundtrip_at_base_zero(self, soa):
        soa.have_add(0, 5)
        assert soa.has(0, 5)
        assert not soa.has(0, 4)
        assert not soa.has(1, 5)  # rows are independent
        assert soa.have[0, 5]  # slot == chunk while base == 0

    def test_mapping_follows_the_base(self, soa):
        soa.base[1] = 40
        soa.base_arr[1] = 40
        soa.have_add(1, 47)
        assert soa.have[1, 7]
        assert soa.has(1, 47)

    def test_idempotent_add(self, soa):
        soa.have_add(0, 9)
        soa.have_add(0, 9)
        view = _ChunkSetView(soa, 0)
        assert len(view) == 1 and list(view) == [9]

    def test_inflight_counts(self, soa):
        soa.inflight_add(0, 3)
        soa.inflight_add(0, 3)  # duplicate: no double count
        soa.inflight_add(0, 4)
        assert soa.inflight_n[0] == 2
        soa.inflight_discard(0, 3)
        soa.inflight_discard(0, 3)  # absent: no underflow
        assert soa.inflight_n[0] == 1
        assert soa.inflight_has(0, 4) and not soa.inflight_has(0, 3)

    def test_inflight_below_base_is_an_invariant_break(self, soa):
        soa.base[0] = 10
        soa.base_arr[0] = 10
        with pytest.raises(SimulationError):
            soa.inflight_add(0, 9)

    def test_late_arrival_below_base_parks_in_low(self, soa):
        soa.base[2] = 20
        soa.base_arr[2] = 20
        soa.have_add(2, 15)
        assert soa.has(2, 15)
        assert 15 in soa.low[2]
        assert not soa.have[2].any()  # never written into the row


class TestTickScan:
    def test_missing_newest_first_with_floor(self, soa):
        # live = 10, window 8 → floor 3; holes of [3, 10] minus held/in-flight.
        soa.have_add(0, 5)
        soa.inflight_add(0, 7)
        floor, holes = soa.tick_scan(0, t=10.0, live_lag=0, limit=None)
        assert floor == 3
        assert holes == [10, 9, 8, 6, 4, 3]

    def test_limit_keeps_the_newest(self, soa):
        floor, holes = soa.tick_scan(0, t=10.0, live_lag=0, limit=3)
        assert holes == [10, 9, 8]

    def test_scan_stash_identity(self, soa):
        _, holes = soa.tick_scan(0, t=10.0, live_lag=0, limit=None)
        assert holes is soa.scan_list
        assert soa.scan_arr.tolist() == holes

    def test_eviction_wipes_below_floor(self, soa):
        soa.have_add(0, 2)
        soa.inflight_add(0, 1)
        floor, _ = soa.tick_scan(0, t=10.0, live_lag=0, limit=None)
        assert floor == 3
        assert soa.evicted_to[0] == 3
        assert not soa.has(0, 2)
        assert soa.inflight_n[0] == 0  # pruned in-flight adjusts the count

    def test_eviction_drops_stale_low_entries(self, soa):
        soa.base[0] = 30
        soa.base_arr[0] = 30
        soa.have_add(0, 10)  # parks in low
        soa.tick_scan(0, t=40.0, live_lag=0, limit=None)  # floor 33
        assert 10 not in soa.low[0]


class TestMakeRoom:
    def test_shift_slides_the_base_and_preserves_bits(self, soa):
        soa.tick_scan(0, t=40.0, live_lag=0, limit=None)  # evicted_to = 33
        soa.have_add(0, 35)
        soa.have_add(0, soa.capacity)  # first unaddressable chunk → shift
        assert soa.shifts == 1 and soa.resizes == 0
        assert soa.base[0] == 33 - 4  # evicted frontier minus margin
        assert soa.base_arr[0] == soa.base[0]
        assert soa.has(0, 35) and soa.has(0, 76)
        assert soa.have[0, 35 - 29]  # the bit physically moved

    def test_shift_rescues_late_bits_into_low(self, soa):
        soa.tick_scan(0, t=40.0, live_lag=0, limit=None)
        soa.have_add(0, 25)  # late arrival: below the next base (29)
        soa.have_add(0, soa.capacity)
        assert 25 in soa.low[0]
        assert soa.has(0, 25)

    def test_widen_reallocates_all_rows(self, soa):
        old_cap = soa.capacity
        soa.have_add(1, 7)
        soa.have_add(0, 200)  # far beyond capacity, nothing evicted yet
        assert soa.resizes == 1
        assert soa.capacity >= 200 + 1 + 64
        assert soa.capacity > old_cap
        # The widen is shared: every row (and the guard) reallocates.
        assert soa.have.shape == (3, soa.capacity + _GUARD)
        assert soa.inflight.shape == soa.have.shape
        assert soa.has(0, 200) and soa.has(1, 7)

    def test_guard_columns_stay_false(self, soa):
        soa.have_add(0, 200)  # widen
        soa.tick_scan(0, t=250.0, live_lag=0, limit=None)
        soa.have_add(0, 300)  # shift after eviction
        soa.inflight_add(0, 301)
        assert not soa.have[:, soa.capacity :].any()
        assert not soa.inflight[:, soa.capacity :].any()


class TestViews:
    def test_chunk_set_view_iterates_low_then_row(self, soa):
        soa.base[0] = 10
        soa.base_arr[0] = 10
        soa.have_add(0, 4)  # low
        soa.have_add(0, 12)
        soa.have_add(0, 11)
        view = _ChunkSetView(soa, 0)
        assert list(view) == [4, 11, 12]
        assert len(view) == 3 and bool(view)
        assert 12 in view and 13 not in view

    def test_inflight_view_membership(self, soa):
        soa.inflight_add(0, 6)
        view = _InflightView(soa, 0)
        assert 6 in view and 7 not in view
