"""Video/channel configuration."""

import pytest

from repro.errors import ConfigurationError
from repro.streaming.video import (
    DEFAULT_CHUNK_BYTES,
    DEFAULT_STREAM_RATE_BPS,
    VideoConfig,
)


class TestDefaults:
    def test_paper_rate(self):
        # CCTV-1 nominal 384 kb/s.
        assert DEFAULT_STREAM_RATE_BPS == 384_000

    def test_default_chunking_three_per_second(self):
        cfg = VideoConfig()
        assert cfg.clock.chunks_per_second == pytest.approx(3.0)

    def test_default_chunk_bytes(self):
        assert VideoConfig().chunk_bytes == DEFAULT_CHUNK_BYTES


class TestValidation:
    def test_playout_inside_window(self):
        with pytest.raises(ConfigurationError):
            VideoConfig(buffer_window_s=10.0, playout_delay_s=10.0)

    def test_negative_playout_rejected(self):
        with pytest.raises(ConfigurationError):
            VideoConfig(playout_delay_s=-1.0)

    def test_nonpositive_window_rejected(self):
        with pytest.raises(ConfigurationError):
            VideoConfig(buffer_window_s=0.0)

    def test_clock_reflects_custom_rate(self):
        cfg = VideoConfig(rate_bps=768_000, chunk_bytes=16_000)
        assert cfg.clock.chunks_per_second == pytest.approx(6.0)
