"""Remote chunk-availability oracle."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ConfigurationError
from repro.streaming.availability import AvailabilityConfig, RemoteAvailability
from repro.streaming.chunk import ChunkClock
from repro.units import kbps


@pytest.fixture()
def clock() -> ChunkClock:
    return ChunkClock(rate_bps=kbps(384), chunk_bytes=16_000)


def make(clock, n=50, highbw_frac=0.5, joins=None, seed=0, **cfg_kw):
    highbw = np.arange(n) < int(n * highbw_frac)
    joins = np.zeros(n) if joins is None else joins
    return RemoteAvailability(
        clock, highbw, joins, AvailabilityConfig(**cfg_kw), np.random.default_rng(seed)
    )


class TestConfig:
    def test_negative_base_rejected(self):
        with pytest.raises(ConfigurationError):
            AvailabilityConfig(highbw_base_s=-1)

    def test_retention_must_exceed_startup(self):
        with pytest.raises(ConfigurationError):
            AvailabilityConfig(startup_s=10, retention_s=5)

    def test_misaligned_inputs_rejected(self, clock):
        with pytest.raises(ConfigurationError):
            RemoteAvailability(
                clock, np.array([True]), np.zeros(2), AvailabilityConfig(),
                np.random.default_rng(0),
            )


class TestHasChunk:
    def test_monotone_in_time(self, clock):
        av = make(clock)
        chunk = 30  # generated at t = 10
        held = [av.has_chunk(0, chunk, t) for t in (10.0, 12.0, 20.0, 40.0)]
        # Once held, stays held until retention expires.
        first = held.index(True) if True in held else len(held)
        assert all(held[first:])

    def test_never_before_generation(self, clock):
        av = make(clock)
        assert not av.has_chunk(0, 300, 1.0)  # chunk 300 generated at t=100

    def test_retention_expiry(self, clock):
        av = make(clock, retention_s=30.0, startup_s=5.0)
        assert not av.has_chunk(0, 3, 40.0)  # generated at 1s, expired at 31s

    def test_respects_join_time(self, clock):
        joins = np.full(10, 100.0)
        av = make(clock, n=10, joins=joins, startup_s=8.0)
        assert not av.has_chunk(0, 299, 105.0)  # still in startup
        # After startup, recent chunks are obtainable.
        t = 100.0 + 8.0 + float(av.delays[0]) + 1.0
        recent = clock.latest_chunk(t - float(av.delays[0]))
        assert av.has_chunk(0, recent, t)

    def test_vectorised_matches_scalar(self, clock):
        av = make(clock, n=30)
        idx = np.arange(30)
        for chunk, t in [(10, 5.0), (10, 8.0), (30, 12.0), (60, 25.0)]:
            vec = av.have_chunk(idx, chunk, t)
            assert vec.tolist() == [av.has_chunk(i, chunk, t) for i in range(30)]

    def test_highbw_peers_hold_chunks_earlier_on_average(self, clock):
        av = make(clock, n=2000, highbw_frac=0.5)
        hb = av.delays[:1000].mean()
        lb = av.delays[1000:].mean()
        assert hb < lb


class TestNewestMissing:
    def test_startup_wants_live_edge(self, clock):
        joins = np.zeros(5)
        av = make(clock, n=5, joins=joins, startup_s=8.0)
        assert av.newest_missing(0, 4.0) == clock.latest_chunk(4.0)

    def test_caught_up_peer_wants_nothing(self, clock):
        av = make(clock, n=5, highbw_frac=1.0, highbw_base_s=0.0,
                  highbw_scale_s=1e-9, startup_s=1.0, retention_s=60.0)
        # Query strictly between chunk boundaries: at an exact boundary the
        # just-generated chunk legitimately hasn't reached the peer yet.
        assert av.newest_missing(0, 50.1) is None

    def test_deficit_tracks_delay(self, clock):
        av = make(clock, n=5)
        t = 100.0
        missing = av.newest_missing(0, t)
        if missing is not None:
            # The peer must genuinely lack it and hold the one before it.
            assert not av.has_chunk(0, missing, t)
            assert missing <= clock.latest_chunk(t)

    def test_deterministic(self, clock):
        a = make(clock, seed=3)
        b = make(clock, seed=3)
        assert np.allclose(a.delays, b.delays)

    def test_len(self, clock):
        assert len(make(clock, n=17)) == 17


class TestBatchScalarEquivalence:
    """The batched oracle paths are *definitionally* the scalar oracle.

    The engine's hot loops rely on bit-equality between every batched /
    cached formulation and the scalar ``has_chunk`` — these properties
    pin that across randomly drawn configurations, not just the fixed
    cases above.
    """

    @given(
        seed=st.integers(0, 2**20),
        n=st.integers(1, 40),
        chunk=st.integers(0, 400),
        t=st.floats(0.0, 200.0, allow_nan=False),
        highbw_frac=st.floats(0.0, 1.0),
        startup_s=st.floats(0.0, 20.0),
        retention_margin=st.floats(1.0, 120.0),
    )
    @settings(max_examples=60, deadline=None)
    def test_have_chunk_matches_scalar(
        self, seed, n, chunk, t, highbw_frac, startup_s, retention_margin
    ):
        clock = ChunkClock(rate_bps=kbps(384), chunk_bytes=16_000)
        av = make(
            clock,
            n=n,
            highbw_frac=highbw_frac,
            seed=seed,
            startup_s=startup_s,
            retention_s=startup_s + retention_margin,
        )
        idx = np.arange(n)
        assert av.have_chunk(idx, chunk, t).tolist() == [
            av.has_chunk(i, chunk, t) for i in range(n)
        ]

    @given(seed=st.integers(0, 2**20), t=st.floats(0.0, 120.0, allow_nan=False))
    @settings(max_examples=30, deadline=None)
    def test_have_chunks_matrix_matches_scalar_grid(self, seed, t):
        clock = ChunkClock(rate_bps=kbps(384), chunk_bytes=16_000)
        av = make(clock, n=12, seed=seed)
        idx = np.arange(12)
        chunks = np.arange(int(t / clock.chunk_interval) + 3)
        mat = av.have_chunks(idx, chunks, t)
        assert mat.shape == (len(chunks), len(idx))
        for ci, chunk in enumerate(chunks):
            assert mat[ci].tolist() == [av.has_chunk(i, int(chunk), t) for i in idx]

    @given(
        seed=st.integers(0, 2**20),
        chunk=st.integers(0, 300),
        t=st.floats(0.0, 120.0, allow_nan=False),
    )
    @settings(max_examples=60, deadline=None)
    def test_subset_paths_match_scalar(self, seed, chunk, t):
        clock = ChunkClock(rate_bps=kbps(384), chunk_bytes=16_000)
        av = make(clock, n=25, seed=seed)
        sub_idx = np.arange(25)[::3]
        delays, ready = av.subset(sub_idx)
        expected = [av.has_chunk(int(i), chunk, t) for i in sub_idx]

        row = av.have_chunk_subset(delays, ready, chunk, t)
        if row is None:
            assert not any(expected)  # aged out everywhere
        else:
            assert row.tolist() == expected

        # The cached-threshold formulation used by the engine tick.
        thr, fresh_until = av.subset_thresholds(delays, ready, chunk)
        cached = (t >= thr).tolist() if t < fresh_until else [False] * len(sub_idx)
        assert cached == expected
