"""Unit tests of the chaos harness: plans, determinism, transport."""

import numpy as np
import pytest

from repro.errors import ChaosError, ConfigurationError
from repro.exec.chaos import (
    CHAOS_KINDS,
    CORRUPTED,
    ENV_CHAOS,
    ChaosFault,
    ChaosPlan,
    chaos_enabled,
    corrupt_result,
    plan_from_env,
)
from repro.exec.shards import ShardKey, ShardOutcome
from repro.trace.store import TraceBundle, trace_digest


class TestChaosFault:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigurationError):
            ChaosFault(match="", kind="meteor")

    def test_probability_out_of_range_rejected(self):
        with pytest.raises(ConfigurationError):
            ChaosFault(match="", kind="crash", probability=1.5)

    def test_substring_match(self):
        fault = ChaosFault(match="pplive", kind="raise")
        assert fault.applies("s3/r0/pplive#0", 0, seed=1)
        assert not fault.applies("s3/r0/tvants#1", 0, seed=1)

    def test_empty_match_hits_everything(self):
        fault = ChaosFault(match="", kind="raise")
        assert fault.applies("anything", 5, seed=0)

    def test_attempt_filter(self):
        fault = ChaosFault(match="", kind="crash", attempts=(0, 2))
        assert fault.applies("x", 0, seed=0)
        assert not fault.applies("x", 1, seed=0)
        assert fault.applies("x", 2, seed=0)

    def test_probability_draws_are_deterministic(self):
        fault = ChaosFault(match="", kind="raise", probability=0.5)
        draws = [fault.applies(f"shard#{i}", 0, seed=9) for i in range(50)]
        again = [fault.applies(f"shard#{i}", 0, seed=9) for i in range(50)]
        assert draws == again
        # A 0.5 coin over 50 labels hits both sides.
        assert any(draws) and not all(draws)

    def test_probability_depends_on_seed(self):
        fault = ChaosFault(match="", kind="raise", probability=0.5)
        a = [fault.applies(f"shard#{i}", 0, seed=1) for i in range(50)]
        b = [fault.applies(f"shard#{i}", 0, seed=2) for i in range(50)]
        assert a != b


class TestChaosPlan:
    def test_noop_plan(self):
        assert ChaosPlan().is_noop
        assert not ChaosPlan(faults=(ChaosFault(match="", kind="raise"),)).is_noop

    def test_first_matching_fault_wins(self):
        plan = ChaosPlan(
            faults=(
                ChaosFault(match="pplive", kind="raise"),
                ChaosFault(match="", kind="corrupt"),
            )
        )
        assert plan.fault_for("s1/r0/pplive#0", 0).kind == "raise"
        assert plan.fault_for("s1/r0/tvants#1", 0).kind == "corrupt"

    def test_inject_before_raise(self):
        plan = ChaosPlan(faults=(ChaosFault(match="", kind="raise"),))
        with pytest.raises(ChaosError):
            plan.inject_before("x", 0)

    def test_inject_before_ignores_corrupt(self):
        plan = ChaosPlan(faults=(ChaosFault(match="", kind="corrupt"),))
        plan.inject_before("x", 0)  # no-op: corrupt is a post-run fault

    def test_inject_after_passthrough_when_unmatched(self):
        plan = ChaosPlan(faults=(ChaosFault(match="pplive", kind="corrupt"),))
        assert plan.inject_after("tvants", 0, "payload") == "payload"

    def test_bad_hang_rejected(self):
        with pytest.raises(ConfigurationError):
            ChaosPlan(hang_s=0.0)

    def test_json_roundtrip(self):
        plan = ChaosPlan(
            faults=(
                ChaosFault(match="pplive", kind="crash", attempts=(0,)),
                ChaosFault(match="", kind="corrupt", probability=0.25),
            ),
            seed=7,
            hang_s=12.5,
        )
        assert ChaosPlan.from_json(plan.to_json()) == plan

    def test_from_json_rejects_garbage(self):
        with pytest.raises(ConfigurationError):
            ChaosPlan.from_json("not json")
        with pytest.raises(ConfigurationError):
            ChaosPlan.from_json("[1, 2]")


class TestEnvTransport:
    def test_absent_env_means_no_plan(self):
        assert plan_from_env() is None
        assert not chaos_enabled()

    def test_env_roundtrip(self, monkeypatch):
        plan = ChaosPlan(faults=(ChaosFault(match="x", kind="hang"),), seed=3)
        monkeypatch.setenv(ENV_CHAOS, plan.env()[ENV_CHAOS])
        assert chaos_enabled()
        assert plan_from_env() == plan

    def test_noop_plan_in_env_reads_as_none(self, monkeypatch):
        monkeypatch.setenv(ENV_CHAOS, ChaosPlan().to_json())
        assert plan_from_env() is None
        # chaos_enabled is the cheap presence check — it does not parse.
        assert chaos_enabled()

    def test_invalid_env_raises_clearly(self, monkeypatch):
        monkeypatch.setenv(ENV_CHAOS, "{broken")
        with pytest.raises(ConfigurationError):
            plan_from_env()


class TestCorruption:
    def test_shard_outcome_bundle_truncated_detectably(self, sim_small):
        bundle = TraceBundle.from_result(sim_small)
        digest = trace_digest(bundle.transfers, bundle.signaling)
        outcome = ShardOutcome(
            key=ShardKey(1, "tvants", 0),
            bundle=bundle,
            content_digest=digest,
        )
        corrupted = corrupt_result(outcome)
        assert corrupted is outcome
        assert len(corrupted.bundle.transfers) < len(sim_small.transfers)
        # The recorded digest no longer matches the damaged arrays — the
        # exact check the supervisor's validation performs.
        assert (
            trace_digest(corrupted.bundle.transfers, corrupted.bundle.signaling)
            != digest
        )
        assert not np.array_equal(corrupted.bundle.transfers, sim_small.transfers)

    def test_opaque_results_become_the_sentinel(self):
        assert corrupt_result({"some": "dict"}) == CORRUPTED
        assert corrupt_result(ShardOutcome(key=ShardKey(1, "x", 0))) == CORRUPTED

    def test_all_kinds_are_spoken_for(self):
        # Guard against adding a kind without wiring its injection.
        assert set(CHAOS_KINDS) == {"crash", "hang", "raise", "corrupt"}
