"""Execution-layer test fixtures.

These suites drive the supervisor and chaos harness with *explicit*
plans and backends; ambient environment knobs (the CI chaos job exports
``REPRO_CHAOS_PLAN`` / ``REPRO_EXEC_BACKEND`` for the campaign-level
suites) would make their attempt counts nondeterministic, so they are
cleared here for every test.
"""

import pytest

from repro.exec.backends import ENV_BACKEND, ENV_WORKERS
from repro.exec.chaos import ENV_CHAOS


@pytest.fixture(autouse=True)
def _clean_exec_env(monkeypatch):
    monkeypatch.delenv(ENV_CHAOS, raising=False)
    monkeypatch.delenv(ENV_BACKEND, raising=False)
    monkeypatch.delenv(ENV_WORKERS, raising=False)
