"""The supervised execution runtime, unit-level and against real pools.

Pool tests fork real worker processes; every job here is tiny (the
helpers below do no simulation) so the suite stays fast on one core.
The full campaign-under-chaos acceptance test lives at the bottom.
"""

import dataclasses
import json
import os
import signal
import threading
import time

import pytest

from repro.errors import ConfigurationError, ExecutorError
from repro.exec.chaos import CORRUPTED, ENV_CHAOS, ChaosFault, ChaosPlan
from repro.exec.supervisor import (
    SupervisedExecutor,
    SupervisionPolicy,
    load_quarantined_spec,
    replay_quarantined,
    write_quarantine,
)

FAST = dict(backoff_base_s=0.01, backoff_max_s=0.05)


@dataclasses.dataclass(frozen=True)
class Job:
    """A picklable toy shard spec."""

    value: int
    duration_s: float = 5.0


# Module-level so they pickle across the worker pipe.
def job_ok(job):
    return ("done", job.value)


def job_raise(job):
    raise ValueError(f"boom {job.value}")


def job_crash_if_zero(job):
    if job.value == 0:
        os._exit(7)
    return ("done", job.value)


def job_sleep(job):
    time.sleep(60.0)
    return ("late", job.value)


def job_unpicklable(job):
    return lambda: job.value


def salvage_tuple(spec, record):
    return ("salvaged", spec.value, record["outcome"])


class TestSupervisionPolicy:
    def test_explicit_timeout_wins(self):
        policy = SupervisionPolicy(shard_timeout_s=7.5)
        assert policy.deadline_for(Job(0, duration_s=10_000.0)) == 7.5

    def test_deadline_derived_from_duration(self):
        policy = SupervisionPolicy(timeout_factor=3.0, min_timeout_s=60.0)
        assert policy.deadline_for(Job(0, duration_s=100.0)) == 300.0

    def test_deadline_floor_for_short_shards(self):
        policy = SupervisionPolicy(min_timeout_s=60.0)
        assert policy.deadline_for(Job(0, duration_s=1.0)) == 60.0

    def test_deadline_from_campaign_spec_config(self):
        from repro.experiments.campaign import CampaignConfig, campaign_shards

        cfg = CampaignConfig(apps=("tvants",), duration_s=50.0)
        [spec] = campaign_shards(cfg)
        assert SupervisionPolicy().deadline_for(spec) == 150.0

    def test_backoff_growth_and_cap(self):
        policy = SupervisionPolicy(
            backoff_base_s=1.0, backoff_factor=2.0, backoff_max_s=5.0
        )
        assert policy.backoff_s(0) == 0.0
        assert policy.backoff_s(1) == 1.0
        assert policy.backoff_s(2) == 2.0
        assert policy.backoff_s(4) == 5.0  # capped

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(shard_timeout_s=0.0),
            dict(timeout_factor=0.0),
            dict(min_timeout_s=-1.0),
            dict(max_attempts=0),
            dict(backoff_base_s=-0.1),
            dict(backoff_factor=0.5),
            dict(max_tasks_per_child=0),
        ],
    )
    def test_invalid_parameters_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            SupervisionPolicy(**kwargs)

    def test_zero_workers_rejected(self):
        with pytest.raises(ConfigurationError):
            SupervisedExecutor(workers=0)


class TestInlineSupervision:
    def test_clean_run_passes_through(self):
        ex = SupervisedExecutor(inline=True)
        assert ex.map_shards(job_ok, [Job(1), Job(2)]) == [("done", 1), ("done", 2)]
        assert [r["outcome"] for r in ex.records] == ["ok", "ok"]
        assert ex.telemetry.counter("exec/retries") == 0

    def test_retry_recovers_flaky_payload(self):
        calls = {"n": 0}

        def flaky(job):
            calls["n"] += 1
            if calls["n"] == 1:
                raise ValueError("first try fails")
            return job_ok(job)

        ex = SupervisedExecutor(inline=True, policy=SupervisionPolicy(**FAST))
        assert ex.map_shards(flaky, [Job(5)]) == [("done", 5)]
        [record] = ex.records
        assert [a["status"] for a in record["attempts"]] == ["error", "ok"]
        assert ex.telemetry.counter("exec/retries") == 1
        assert ex.telemetry.counter("exec/errors") == 1

    def test_exhausted_attempts_raise_without_salvage(self):
        ex = SupervisedExecutor(
            inline=True, policy=SupervisionPolicy(max_attempts=2, **FAST)
        )
        with pytest.raises(ExecutorError, match="2 attempt"):
            ex.map_shards(job_raise, [Job(3)])

    def test_salvage_hook_absorbs_poison(self):
        ex = SupervisedExecutor(
            inline=True,
            policy=SupervisionPolicy(max_attempts=2, **FAST),
            salvage=salvage_tuple,
        )
        results = ex.map_shards(job_raise, [Job(3), Job(4)])
        assert results == [("salvaged", 3, "quarantined"), ("salvaged", 4, "quarantined")]
        assert ex.telemetry.counter("exec/quarantined") == 2
        assert ex.telemetry.counter("exec/errors") == 4

    def test_corrupt_sentinel_rejected_by_default_validation(self):
        ex = SupervisedExecutor(
            inline=True,
            policy=SupervisionPolicy(max_attempts=2, **FAST),
            salvage=salvage_tuple,
        )
        [result] = ex.map_shards(lambda job: CORRUPTED, [Job(1)])
        assert result == ("salvaged", 1, "quarantined")
        assert ex.telemetry.counter("exec/corrupt") == 2


class TestPoolSupervision:
    def test_clean_pool_run(self):
        ex = SupervisedExecutor(workers=2, policy=SupervisionPolicy(**FAST))
        assert ex.map_shards(job_ok, [Job(i) for i in range(4)]) == [
            ("done", i) for i in range(4)
        ]
        assert [r["outcome"] for r in ex.records] == ["ok"] * 4

    def test_worker_crash_is_isolated(self):
        ex = SupervisedExecutor(
            workers=2,
            policy=SupervisionPolicy(max_attempts=1, **FAST),
            salvage=salvage_tuple,
        )
        results = ex.map_shards(job_crash_if_zero, [Job(0), Job(1), Job(2)])
        assert results == [("salvaged", 0, "quarantined"), ("done", 1), ("done", 2)]
        assert ex.telemetry.counter("exec/crashes") == 1
        assert ex.telemetry.counter("exec/worker_restarts") >= 1
        assert ex.records[0]["attempts"][0]["status"] == "crash"

    def test_deadline_kills_hung_worker(self):
        ex = SupervisedExecutor(
            workers=1,
            policy=SupervisionPolicy(shard_timeout_s=1.0, max_attempts=1, **FAST),
            salvage=salvage_tuple,
        )
        start = time.monotonic()
        [result] = ex.map_shards(job_sleep, [Job(9)])
        assert time.monotonic() - start < 30.0  # nowhere near the 60s sleep
        assert result == ("salvaged", 9, "quarantined")
        assert ex.telemetry.counter("exec/timeouts") == 1
        assert ex.records[0]["attempts"][0]["status"] == "timeout"

    def test_chaos_retry_recovers_in_real_pool(self, monkeypatch):
        plan = ChaosPlan(faults=(ChaosFault(match="", kind="raise", attempts=(0,)),))
        monkeypatch.setenv(ENV_CHAOS, plan.to_json())
        ex = SupervisedExecutor(workers=2, policy=SupervisionPolicy(**FAST))
        assert ex.map_shards(job_ok, [Job(1), Job(2)]) == [("done", 1), ("done", 2)]
        assert ex.telemetry.counter("exec/retries") == 2
        assert ex.telemetry.counter("exec/errors") == 2
        for record in ex.records:
            assert [a["status"] for a in record["attempts"]] == ["error", "ok"]

    def test_unpicklable_result_fails_the_attempt(self):
        ex = SupervisedExecutor(
            workers=1,
            policy=SupervisionPolicy(max_attempts=1, **FAST),
            salvage=salvage_tuple,
        )
        [result] = ex.map_shards(job_unpicklable, [Job(1)])
        assert result == ("salvaged", 1, "quarantined")
        assert "unpicklable" in ex.records[0]["attempts"][0]["error"]

    def test_worker_recycling_counts_restarts(self):
        ex = SupervisedExecutor(
            workers=1,
            policy=SupervisionPolicy(max_tasks_per_child=2, **FAST),
        )
        results = ex.map_shards(job_ok, [Job(i) for i in range(5)])
        assert results == [("done", i) for i in range(5)]
        assert ex.telemetry.counter("exec/worker_restarts") >= 2

    def test_signal_handlers_restored_after_run(self):
        before = signal.getsignal(signal.SIGINT)
        ex = SupervisedExecutor(workers=1, policy=SupervisionPolicy(**FAST))
        ex.map_shards(job_ok, [Job(1)])
        assert signal.getsignal(signal.SIGINT) is before

    def test_drain_stops_dispatch_and_marks_interrupted(self):
        ex = SupervisedExecutor(
            workers=1,
            policy=SupervisionPolicy(shard_timeout_s=120.0, **FAST),
            salvage=salvage_tuple,
        )

        def pull_the_plug():
            time.sleep(0.8)
            ex._drain_flag = True  # what the SIGINT/SIGTERM handler sets

        threading.Thread(target=pull_the_plug, daemon=True).start()
        start = time.monotonic()
        results = ex.map_shards(job_sleep, [Job(1), Job(2)])
        assert time.monotonic() - start < 30.0
        assert ex.drained
        assert results == [
            ("salvaged", 1, "interrupted"),
            ("salvaged", 2, "interrupted"),
        ]
        assert ex.telemetry.counter("exec/interrupted") == 2
        for record in ex.records:
            assert record["outcome"] == "interrupted"


class TestQuarantineReplay:
    def _campaign_spec(self):
        from repro.experiments.campaign import CampaignConfig, campaign_shards

        cfg = CampaignConfig(apps=("tvants",), duration_s=8.0, seed=3, scale=0.3)
        [spec] = campaign_shards(cfg)
        return spec

    def test_write_and_load_roundtrip(self, tmp_path):
        spec = self._campaign_spec()
        record = {"label": str(spec.key), "deadline_s": 24.0, "attempts": [], "outcome": None}
        path = write_quarantine(tmp_path, spec, record)
        assert path.exists()
        sidecar = json.loads(path.with_suffix("").with_suffix(".json").read_text())
        assert sidecar["spec_file"] == path.name
        assert sidecar["spec_type"].endswith("ShardSpec")
        assert load_quarantined_spec(path) == spec

    def test_replay_runs_the_shard_inline(self, tmp_path):
        spec = self._campaign_spec()
        record = {"label": str(spec.key), "deadline_s": 24.0, "attempts": [], "outcome": None}
        path = write_quarantine(tmp_path, spec, record)
        outcome = replay_quarantined(path)
        assert outcome.ok
        assert outcome.key == spec.key
        # The JSON sidecar is an equally valid entry point.
        via_sidecar = replay_quarantined(path.with_suffix("").with_suffix(".json"))
        assert via_sidecar.ok

    def test_missing_spec_raises(self, tmp_path):
        with pytest.raises(ExecutorError):
            load_quarantined_spec(tmp_path / "nope.spec.pkl")

    def test_cli_entry_point(self, tmp_path, capsys):
        from repro.exec.supervisor import main

        spec = self._campaign_spec()
        record = {"label": str(spec.key), "deadline_s": 24.0, "attempts": [], "outcome": None}
        path = write_quarantine(tmp_path, spec, record)
        assert main([str(path)]) == 0
        assert "replayed" in capsys.readouterr().out


class TestCampaignUnderChaos:
    """The acceptance scenario: crash + hang + corrupt + poison shards,
    one campaign on the real process pool, no abort and no hang —
    under every chunk-scheduling policy (the resilient runtime must be
    policy-agnostic: the chaos faults hit the executor layer, the
    scheduler only decides what the surviving shards simulate)."""

    @pytest.mark.parametrize("scheduler", ("edf", "mesh-pull", "push", "rarest"))
    def test_campaign_completes_degraded(self, monkeypatch, tmp_path, scheduler):
        from repro.experiments.campaign import CampaignConfig, run_campaign
        from repro.obs.manifest import manifest_from_campaign

        plan = ChaosPlan(
            faults=(
                # tvants: dies on its first try, wedges on its second —
                # the crash-isolation AND deadline paths, then recovery.
                ChaosFault(match="tvants", kind="crash", attempts=(0,)),
                ChaosFault(match="tvants", kind="hang", attempts=(1,)),
                # pplive: completes but the payload is damaged in
                # transport; the digest check catches it, retry recovers.
                ChaosFault(match="pplive", kind="corrupt", attempts=(0,)),
                # sopcast: poison — fails every attempt, must quarantine.
                ChaosFault(match="sopcast", kind="raise"),
            ),
            seed=1,
            hang_s=120.0,
        )
        monkeypatch.setenv(ENV_CHAOS, plan.to_json())
        cfg = CampaignConfig(
            apps=("pplive", "sopcast", "tvants"),
            duration_s=8.0,
            seed=3,
            scale=0.3,
            scheduler=scheduler,
        )
        campaign = run_campaign(
            cfg,
            backend="process",  # chaos upgrades this to the supervised pool
            workers=2,
            policy=SupervisionPolicy(
                shard_timeout_s=8.0,
                max_attempts=3,
                quarantine_dir=str(tmp_path / "quarantine"),
                **FAST,
            ),
        )

        # Campaign completed degraded: survivors analysed, poison absent.
        assert not campaign.ok
        assert sorted(campaign.runs) == ["pplive", "tvants"]
        assert campaign.failed_apps == ["sopcast"]
        # The policy actually reached the surviving shards.
        for run in campaign.runs.values():
            assert run.result.profile.scheduler == scheduler

        # The poison shard is in the ledger at stage "executor".
        executor_failures = [f for f in campaign.failures if f.stage == "executor"]
        assert {f.app for f in executor_failures} == {"sopcast"}
        assert len(executor_failures) == 3  # one per attempt

        # Degradation is flagged.
        assert [f.code for f in campaign.flags] == ["exec-quarantined"]

        # Supervision records tell the whole story per shard.
        sup = campaign.supervision
        assert [a["status"] for a in sup["tvants"]["attempts"]] == [
            "crash",
            "timeout",
            "ok",
        ]
        assert [a["status"] for a in sup["pplive"]["attempts"]] == ["corrupt", "ok"]
        assert sup["sopcast"]["outcome"] == "quarantined"

        # Telemetry counters account for every injected fault.
        counters = campaign.telemetry.counters
        assert counters["exec/crashes"] == 1
        assert counters["exec/timeouts"] == 1
        assert counters["exec/corrupt"] == 1
        assert counters["exec/errors"] == 3
        assert counters["exec/quarantined"] == 1
        # sopcast retries after attempts 0 and 1, tvants after the crash
        # and the timeout, pplive after the corrupt payload.
        assert counters["exec/retries"] == 5

        # The quarantined spec is on disk, replayable offline — and the
        # replay (no chaos env here in-process… the plan is ambient, so
        # clear it first) reproduces a healthy run.
        quarantine = tmp_path / "quarantine"
        specs = sorted(quarantine.glob("*.spec.pkl"))
        assert len(specs) == 1
        monkeypatch.delenv(ENV_CHAOS)
        replayed = replay_quarantined(specs[0])
        assert replayed.ok and replayed.key.app == "sopcast"

        # The manifest records the supervision block and quality flags.
        manifest = manifest_from_campaign(campaign)
        by_app = {s["app"]: s for s in manifest.shards}
        assert by_app["sopcast"]["supervision"]["outcome"] == "quarantined"
        assert len(by_app["tvants"]["supervision"]["attempts"]) == 3
        assert by_app["tvants"]["supervision"]["deadline_s"] == 8.0
        assert manifest.quality_flags == [
            {
                "code": "exec-quarantined",
                "detail": "shard s3/r0/sopcast#1 exhausted 3 attempt(s)",
            }
        ]
