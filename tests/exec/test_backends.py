"""Backend selection and the unsupervised pool's failure reporting."""

import pytest

from repro.errors import ConfigurationError, ExecutorError
from repro.exec.backends import (
    ENV_WORKERS,
    ProcessExecutor,
    SerialExecutor,
    resolve_executor,
)
from repro.exec.chaos import ENV_CHAOS, ChaosFault, ChaosPlan
from repro.exec.supervisor import SupervisedExecutor, SupervisionPolicy


def spec_must_be_even(spec):
    if spec % 2:
        raise RuntimeError(f"odd spec {spec}")
    return spec * 10


class TestProcessExecutorFailures:
    def test_failure_names_the_shard(self):
        ex = ProcessExecutor(workers=2)
        with pytest.raises(ExecutorError) as info:
            ex.map_shards(spec_must_be_even, [0, 2, 3, 4])
        message = str(info.value)
        assert "shard 2 (3)" in message
        assert "RuntimeError: odd spec 3" in message
        assert isinstance(info.value.__cause__, RuntimeError)

    def test_clean_map_keeps_spec_order(self):
        ex = ProcessExecutor(workers=2)
        assert ex.map_shards(spec_must_be_even, [4, 0, 2]) == [40, 0, 20]
        assert ex.map_shards(spec_must_be_even, []) == []


class TestWorkerCountValidation:
    @pytest.mark.parametrize("raw", ["0", "-2"])
    def test_nonpositive_env_workers_rejected(self, raw, monkeypatch):
        monkeypatch.setenv(ENV_WORKERS, raw)
        with pytest.raises(ConfigurationError, match="positive worker count"):
            resolve_executor("process")

    def test_nonpositive_explicit_workers_rejected(self):
        with pytest.raises(ConfigurationError, match="positive"):
            resolve_executor("process", workers=-1)


class TestSupervisedResolution:
    def test_supervised_backend_by_name(self):
        executor = resolve_executor("supervised", workers=3)
        assert isinstance(executor, SupervisedExecutor)
        assert executor.workers == 3
        assert not executor.inline

    def test_policy_upgrades_process_pool(self):
        policy = SupervisionPolicy(max_attempts=5)
        executor = resolve_executor("process", workers=2, policy=policy)
        assert isinstance(executor, SupervisedExecutor)
        assert executor.policy.max_attempts == 5

    def test_policy_makes_serial_inline_supervised(self):
        executor = resolve_executor("serial", policy=SupervisionPolicy())
        assert isinstance(executor, SupervisedExecutor)
        assert executor.inline
        assert executor.workers == 1

    def test_chaos_env_upgrades_process_pool(self, monkeypatch):
        plan = ChaosPlan(faults=(ChaosFault(match="", kind="crash"),))
        monkeypatch.setenv(ENV_CHAOS, plan.to_json())
        assert isinstance(resolve_executor("process", workers=2), SupervisedExecutor)

    def test_chaos_env_leaves_serial_alone(self, monkeypatch):
        # Serial runs in-process: a crash fault would kill the test run
        # itself, and inline supervision is only opted into via a policy.
        plan = ChaosPlan(faults=(ChaosFault(match="", kind="crash"),))
        monkeypatch.setenv(ENV_CHAOS, plan.to_json())
        assert isinstance(resolve_executor("serial"), SerialExecutor)

    def test_plain_process_without_policy_or_chaos(self):
        assert isinstance(resolve_executor("process", workers=2), ProcessExecutor)
