"""Swarm analytics: overlay graph and stability."""

import numpy as np
import pytest

from repro.errors import AnalysisError
from repro.swarm import build_overlay, stability_report


class TestOverlay:
    @pytest.fixture(scope="class")
    def overlay(self, flows_small):
        return build_overlay(flows_small)

    def test_nodes_annotated(self, overlay):
        some = next(iter(overlay.graph.nodes))
        attrs = overlay.graph.nodes[some]
        assert {"asn", "cc", "highbw", "is_probe"} <= set(attrs)

    def test_edges_weighted(self, overlay):
        u, v, data = next(iter(overlay.graph.edges(data=True)))
        assert data["bytes"] > 0
        assert overlay.edge_bytes(u, v) == data["bytes"]

    def test_absent_edge_zero(self, overlay):
        assert overlay.edge_bytes(1, 2) == 0

    def test_only_contributor_edges(self, overlay, flows_small):
        from repro.heuristics.contributors import contributor_mask

        expected = int(contributor_mask(flows_small.flows).sum())
        assert overlay.graph.number_of_edges() == expected

    def test_degree_stats(self, overlay):
        stats = overlay.degree_stats()
        assert stats.n_nodes == len(overlay)
        assert stats.max_degree >= stats.mean_degree >= 1
        # Probes see everything, so their degrees dwarf the average.
        assert stats.probe_mean_degree > 2 * stats.mean_degree

    def test_probe_perspective_bias(self, overlay):
        # Every edge touches a probe (the capture can't see anything else).
        probe_set = overlay.probe_ips
        for u, v in overlay.graph.edges():
            assert u in probe_set or v in probe_set

    def test_same_as_fraction_bounded(self, overlay):
        frac = overlay.same_as_edge_fraction()
        assert 0 <= frac <= 1

    def test_popular_channel_has_denser_local_structure(self, campaign_small):
        # TVAnts (locality-aware) overlays have a larger same-AS edge share
        # than SopCast's (blind) — the structural view of Table IV.
        tv = build_overlay(campaign_small["tvants"].flows)
        sc = build_overlay(campaign_small["sopcast"].flows)
        assert tv.same_as_edge_fraction() > sc.same_as_edge_fraction()

    def test_empty_overlay_raises_on_stats(self, flows_small):
        from repro.trace.flows import FlowTable
        from repro.trace.records import FLOW_DTYPE

        empty = build_overlay(
            FlowTable(np.empty(0, dtype=FLOW_DTYPE), flows_small.hosts)
        )
        with pytest.raises(AnalysisError):
            empty.degree_stats()


class TestStability:
    @pytest.fixture(scope="class")
    def report(self, flows_small, sim_small):
        return stability_report(flows_small, sim_small.duration_s)

    def test_counts(self, report):
        assert report.n_peers > 0
        assert 0 <= report.n_stable <= report.n_peers

    def test_spans_bounded(self, report, sim_small):
        assert 0 <= report.span_median_s <= sim_small.duration_s
        assert 0 <= report.span_mean_s <= sim_small.duration_s

    def test_stable_peers_carry_disproportionate_bytes(self, report):
        # The published stable-peer finding: byte share > peer share.
        if report.n_stable:
            assert report.concentration > 1.0

    def test_shares_consistent(self, report):
        assert report.stable_peer_share == pytest.approx(
            report.n_stable / report.n_peers
        )
        assert 0 <= report.stable_byte_share <= 1

    def test_threshold_monotonicity(self, flows_small, sim_small):
        lax = stability_report(flows_small, sim_small.duration_s, stable_threshold=0.3)
        strict = stability_report(flows_small, sim_small.duration_s, stable_threshold=0.9)
        assert lax.n_stable >= strict.n_stable

    def test_invalid_inputs(self, flows_small):
        with pytest.raises(AnalysisError):
            stability_report(flows_small, 0.0)
        with pytest.raises(AnalysisError):
            stability_report(flows_small, 60.0, stable_threshold=1.5)

    def test_empty_flows(self, flows_small):
        from repro.trace.flows import FlowTable
        from repro.trace.records import FLOW_DTYPE

        empty = FlowTable(np.empty(0, dtype=FLOW_DTYPE), flows_small.hosts)
        rep = stability_report(empty, 60.0)
        assert rep.n_peers == 0
