"""Impairment plans: composition, presets and end-to-end determinism."""

import pytest

from repro.errors import FaultInjectionError
from repro.faults.plan import ImpairmentPlan, simulate_impaired
from repro.streaming.engine import EngineConfig, simulate
from repro.streaming.profiles import get_profile


@pytest.fixture(scope="module")
def profile():
    return get_profile("tvants").scaled(0.4)


class TestPlan:
    def test_default_is_noop(self):
        assert ImpairmentPlan().is_noop

    def test_preset_zero_is_noop(self):
        assert ImpairmentPlan.preset(0.0).is_noop

    def test_preset_full_has_every_family(self):
        plan = ImpairmentPlan.preset(1.0, duration_s=300.0)
        assert plan.loss is not None
        assert plan.storms and plan.flash_crowds
        assert plan.capture is not None
        assert plan.clock is not None

    def test_bad_severity_rejected(self):
        with pytest.raises(FaultInjectionError):
            ImpairmentPlan.preset(1.5)

    def test_with_seed(self):
        plan = ImpairmentPlan.preset(0.5, seed=1)
        assert plan.with_seed(9).seed == 9
        assert plan.with_seed(9).loss == plan.loss

    def test_noop_engine_config_unchanged(self):
        base = EngineConfig(duration_s=60.0, seed=1)
        assert ImpairmentPlan().engine_config(base) is base

    def test_loss_floor_lifted_to_baseline(self):
        base = EngineConfig(duration_s=60.0, seed=1, request_loss_prob=0.1)
        plan = ImpairmentPlan.preset(0.5, duration_s=60.0)
        sched = plan.engine_config(base).request_loss_schedule
        assert sched is not None
        assert sched.probs.min() == pytest.approx(0.1)


class TestDeterminism:
    def test_same_seeds_byte_identical(self, profile):
        plan = ImpairmentPlan.preset(0.75, seed=3, duration_s=25.0)
        a, log_a = simulate_impaired(profile, plan, duration_s=25.0, seed=11)
        b, log_b = simulate_impaired(profile, plan, duration_s=25.0, seed=11)
        assert a.transfers.tobytes() == b.transfers.tobytes()
        assert log_a.capture_gaps == log_b.capture_gaps
        assert log_a.bad_time_fraction == log_b.bad_time_fraction

    def test_fault_seed_changes_trace(self, profile):
        plan = ImpairmentPlan.preset(0.75, seed=3, duration_s=25.0)
        a, _ = simulate_impaired(profile, plan, duration_s=25.0, seed=11)
        b, _ = simulate_impaired(profile, plan.with_seed(4), duration_s=25.0, seed=11)
        assert a.transfers.tobytes() != b.transfers.tobytes()

    def test_noop_plan_matches_baseline(self, profile):
        base = simulate(profile, engine_config=EngineConfig(duration_s=25.0, seed=11))
        impaired, log = simulate_impaired(
            profile, ImpairmentPlan(), duration_s=25.0, seed=11
        )
        assert impaired.transfers.tobytes() == base.transfers.tobytes()
        assert log.dropped_fraction == 0.0


class TestImpairmentLog:
    def test_log_records_damage(self, profile):
        plan = ImpairmentPlan.preset(1.0, seed=3, duration_s=25.0)
        result, log = simulate_impaired(profile, plan, duration_s=25.0, seed=11)
        assert log.records_before >= log.records_after == len(result.transfers)
        assert log.clock_skew_applied
        assert 0.0 < log.bad_time_fraction < 1.0
        assert result.extras["impairment"] is log
