"""Fault-injection subsystem tests."""
