"""Measurement faults: sniffer outages and clock skew on transfer logs."""

import numpy as np
import pytest

from repro.errors import FaultInjectionError
from repro.faults.capture import (
    CaptureGap,
    CaptureOutageConfig,
    apply_capture_gaps,
    draw_capture_gaps,
)
from repro.faults.clock import ClockSkewConfig, apply_clock_skew, draw_clock_skew
from repro.trace.records import TRANSFER_DTYPE

PROBE_A, PROBE_B, PEER = 100, 200, 300


def make_records(ts, src, dst) -> np.ndarray:
    records = np.zeros(len(ts), dtype=TRANSFER_DTYPE)
    records["ts"] = ts
    records["src"] = src
    records["dst"] = dst
    records["bytes"] = 1000
    return records


class TestCaptureGaps:
    def test_gap_validation(self):
        with pytest.raises(FaultInjectionError):
            CaptureGap(probe_ip=PROBE_A, start_s=10.0, stop_s=10.0)

    def test_config_validation(self):
        with pytest.raises(FaultInjectionError):
            CaptureOutageConfig(outage_prob=1.5)

    def test_records_in_gap_dropped(self):
        records = make_records(
            ts=[5.0, 15.0, 25.0],
            src=[PEER, PEER, PEER],
            dst=[PROBE_A, PROBE_A, PROBE_A],
        )
        gaps = (CaptureGap(probe_ip=PROBE_A, start_s=10.0, stop_s=20.0),)
        out = apply_capture_gaps(records, np.array([PROBE_A, PROBE_B]), gaps)
        assert out["ts"].tolist() == [5.0, 25.0]

    def test_other_probe_keeps_record(self):
        # Probe A's sniffer is down, but probe B captured the same
        # transfer: the merged dataset still has it.
        records = make_records(ts=[15.0], src=[PROBE_B], dst=[PROBE_A])
        gaps = (CaptureGap(probe_ip=PROBE_A, start_s=10.0, stop_s=20.0),)
        out = apply_capture_gaps(records, np.array([PROBE_A, PROBE_B]), gaps)
        assert len(out) == 1

    def test_no_gaps_is_copy(self):
        records = make_records(ts=[1.0], src=[PEER], dst=[PROBE_A])
        out = apply_capture_gaps(records, np.array([PROBE_A]), ())
        assert out is not records
        assert np.array_equal(out, records)

    def test_draw_is_bounded_and_deterministic(self):
        probes = np.arange(100, 140, dtype=np.uint32)
        cfg = CaptureOutageConfig(outage_prob=0.5, mean_outage_s=20.0)
        a = draw_capture_gaps(probes, 300.0, cfg, np.random.default_rng(2))
        b = draw_capture_gaps(probes, 300.0, cfg, np.random.default_rng(2))
        assert a == b
        assert 0 < len(a) < len(probes)
        for gap in a:
            assert 0.0 <= gap.start_s < gap.stop_s <= 300.0


class TestClockSkew:
    def test_config_validation(self):
        with pytest.raises(FaultInjectionError):
            ClockSkewConfig(max_offset_s=-1.0)

    def test_offset_applied_to_capturing_probe(self):
        records = make_records(ts=[10.0, 10.0], src=[PEER, PEER], dst=[PROBE_A, PROBE_B])
        skew = draw_clock_skew(
            np.array([PROBE_A, PROBE_B]),
            ClockSkewConfig(max_offset_s=0.5, max_drift_ppm=0.0, jitter_std_s=0.0),
            np.random.default_rng(4),
        )
        out = apply_clock_skew(records, skew, np.random.default_rng(5))
        # Both records moved by their probe's offset; offsets differ.
        deltas = sorted(out["ts"] - 10.0)
        expected = sorted(skew.offsets_s)
        assert deltas == pytest.approx(expected)

    def test_non_probe_records_untouched(self):
        records = make_records(ts=[10.0], src=[PEER], dst=[PEER + 1])
        skew = draw_clock_skew(
            np.array([PROBE_A]),
            ClockSkewConfig(max_offset_s=0.5, jitter_std_s=0.0),
            np.random.default_rng(4),
        )
        out = apply_clock_skew(records, skew, np.random.default_rng(5))
        assert out["ts"][0] == 10.0

    def test_output_sorted_and_non_negative(self):
        records = make_records(
            ts=[0.01, 0.02, 50.0],
            src=[PEER, PEER, PEER],
            dst=[PROBE_A, PROBE_B, PROBE_A],
        )
        skew = draw_clock_skew(
            np.array([PROBE_A, PROBE_B]),
            ClockSkewConfig(max_offset_s=1.0, max_drift_ppm=500.0, jitter_std_s=0.01),
            np.random.default_rng(6),
        )
        out = apply_clock_skew(records, skew, np.random.default_rng(7))
        assert np.all(out["ts"] >= 0.0)
        assert np.all(np.diff(out["ts"]) >= 0.0)

    def test_byte_columns_untouched(self):
        records = make_records(ts=[1.0, 2.0], src=[PEER, PEER], dst=[PROBE_A, PROBE_A])
        skew = draw_clock_skew(
            np.array([PROBE_A]), ClockSkewConfig(), np.random.default_rng(8)
        )
        out = apply_clock_skew(records, skew, np.random.default_rng(9))
        assert np.array_equal(out["bytes"], records["bytes"])
