"""Gilbert–Elliott bursty-loss schedules."""

import numpy as np
import pytest

from repro.errors import FaultInjectionError
from repro.faults.loss import (
    GilbertElliottConfig,
    LossSchedule,
    materialize_loss_schedule,
)


class TestConfig:
    def test_defaults_valid(self):
        cfg = GilbertElliottConfig()
        assert cfg.loss_bad > cfg.loss_good

    def test_bad_sojourn_rejected(self):
        with pytest.raises(FaultInjectionError):
            GilbertElliottConfig(mean_good_s=0)

    def test_bad_probability_rejected(self):
        with pytest.raises(FaultInjectionError):
            GilbertElliottConfig(loss_bad=1.5)


class TestSchedule:
    def test_starts_good(self, rng):
        sched = materialize_loss_schedule(600.0, GilbertElliottConfig(), rng)
        assert sched.prob_at(0.0) == 0.0

    def test_alternates_states(self, rng):
        cfg = GilbertElliottConfig(mean_good_s=20.0, mean_bad_s=5.0, loss_bad=0.4)
        sched = materialize_loss_schedule(600.0, cfg, rng)
        # Segments strictly alternate between the two loss levels.
        assert len(sched.probs) > 2
        assert set(np.unique(sched.probs)) == {0.0, 0.4}
        assert not np.any(sched.probs[1:] == sched.probs[:-1])

    def test_prob_at_steps(self):
        sched = LossSchedule(
            boundaries=np.array([0.0, 10.0, 30.0]),
            probs=np.array([0.0, 0.5, 0.0]),
            horizon_s=60.0,
        )
        assert sched.prob_at(5.0) == 0.0
        assert sched.prob_at(10.0) == 0.5
        assert sched.prob_at(29.9) == 0.5
        assert sched.prob_at(45.0) == 0.0

    def test_bad_time_fraction(self):
        sched = LossSchedule(
            boundaries=np.array([0.0, 10.0, 30.0]),
            probs=np.array([0.0, 0.5, 0.0]),
            horizon_s=100.0,
        )
        assert sched.bad_time_fraction == pytest.approx(0.2)

    def test_deterministic(self):
        cfg = GilbertElliottConfig()
        a = materialize_loss_schedule(300.0, cfg, np.random.default_rng(9))
        b = materialize_loss_schedule(300.0, cfg, np.random.default_rng(9))
        assert np.array_equal(a.boundaries, b.boundaries)
        assert np.array_equal(a.probs, b.probs)

    def test_misaligned_rejected(self):
        with pytest.raises(FaultInjectionError):
            LossSchedule(
                boundaries=np.array([0.0, 1.0]),
                probs=np.array([0.1]),
                horizon_s=5.0,
            )

    def test_nonzero_start_rejected(self):
        with pytest.raises(FaultInjectionError):
            LossSchedule(
                boundaries=np.array([1.0]), probs=np.array([0.1]), horizon_s=5.0
            )

    def test_zero_duration_rejected(self, rng):
        with pytest.raises(FaultInjectionError):
            materialize_loss_schedule(0.0, GilbertElliottConfig(), rng)
