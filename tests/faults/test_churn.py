"""Churn storms and flash crowds over a materialised churn process."""

import numpy as np
import pytest

from repro.errors import FaultInjectionError
from repro.faults.churn import ChurnStorm, FlashCrowd, apply_churn_events
from repro.population.churn import ChurnProcess, Session


def make_churn(horizon: float = 100.0) -> ChurnProcess:
    """Ten peers: five online from the start, five joining late."""
    sessions = [Session(peer_id=i, join=0.0, leave=horizon) for i in range(5)]
    sessions += [
        Session(peer_id=5 + i, join=80.0, leave=horizon) for i in range(5)
    ]
    return ChurnProcess(sessions, horizon)


class TestValidation:
    def test_bad_storm_window(self):
        with pytest.raises(FaultInjectionError):
            ChurnStorm(at_s=10.0, duration_s=0.0)

    def test_bad_leave_fraction(self):
        with pytest.raises(FaultInjectionError):
            ChurnStorm(at_s=10.0, leave_fraction=2.0)

    def test_bad_crowd_stay(self):
        with pytest.raises(FaultInjectionError):
            FlashCrowd(at_s=10.0, mean_stay_s=-1.0)


class TestStorm:
    def test_full_storm_empties_online_set(self, rng):
        churn = make_churn()
        storm = ChurnStorm(at_s=20.0, duration_s=10.0, leave_fraction=1.0)
        out = apply_churn_events(churn, (storm,), (), rng)
        # Every peer online at t=20 leaves inside [20, 30).
        hit = [s for s in out.sessions if s.join <= 20.0]
        assert all(20.0 <= s.leave < 30.0 for s in hit)
        # Late joiners (join=80) are untouched.
        late = [s for s in out.sessions if s.join > 20.0]
        assert all(s.leave == churn.horizon for s in late)

    def test_storm_never_lengthens_sessions(self, rng):
        churn = make_churn()
        storm = ChurnStorm(at_s=20.0, duration_s=10.0, leave_fraction=0.7)
        out = apply_churn_events(churn, (storm,), (), rng)
        for before, after in zip(churn.sessions, out.sessions):
            assert after.leave <= before.leave
            assert after.join == before.join


class TestFlashCrowd:
    def test_crowd_pulls_joins_forward(self, rng):
        churn = make_churn()
        crowd = FlashCrowd(at_s=40.0, join_fraction=1.0, mean_stay_s=30.0)
        out = apply_churn_events(churn, (), (crowd,), rng)
        late = [s for s in out.sessions if s.peer_id >= 5]
        assert all(s.join == 40.0 for s in late)
        assert all(s.leave >= s.join for s in out.sessions)

    def test_noop_plan_returns_same_object(self, rng):
        churn = make_churn()
        assert apply_churn_events(churn, (), (), rng) is churn


class TestInvariants:
    def test_sessions_never_inverted(self, rng):
        churn = make_churn()
        out = apply_churn_events(
            churn,
            (ChurnStorm(at_s=10.0, duration_s=20.0, leave_fraction=0.9),),
            (FlashCrowd(at_s=50.0, join_fraction=0.9, mean_stay_s=10.0),),
            rng,
        )
        assert len(out.sessions) == len(churn.sessions)
        for s in out.sessions:
            assert s.join <= s.leave <= churn.horizon

    def test_deterministic(self):
        churn = make_churn()
        events = (
            (ChurnStorm(at_s=10.0, leave_fraction=0.5),),
            (FlashCrowd(at_s=50.0, join_fraction=0.5),),
        )
        a = apply_churn_events(churn, *events, np.random.default_rng(3))
        b = apply_churn_events(churn, *events, np.random.default_rng(3))
        assert [(s.join, s.leave) for s in a.sessions] == [
            (s.join, s.leave) for s in b.sessions
        ]
