"""Documentation link checker.

Every relative markdown link in ``docs/``, ``README.md`` and
``DESIGN.md`` must resolve to a real file, and anchor fragments must
match a heading in the target document.  Runs in the normal test suite
(and in the CI docs job) so the tree can't merge broken links.
"""

import re
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parents[2]
DOC_FILES = sorted(
    [REPO / "README.md", REPO / "DESIGN.md", *(REPO / "docs").glob("*.md")]
)

#: Inline markdown links: [text](target).  Reference-style links and
#: autolinks are not used in this tree.
LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
EXTERNAL = ("http://", "https://", "mailto:")


def _links(path: Path) -> list[str]:
    return LINK_RE.findall(path.read_text())


def _slugify(heading: str) -> str:
    """GitHub-style anchor slug for a markdown heading."""
    text = heading.strip().lower()
    # Drop inline-code backticks and markdown emphasis markers.
    text = re.sub(r"[`*_]", "", text)
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def _anchors(path: Path) -> set[str]:
    return {
        _slugify(m.group(1))
        for m in re.finditer(r"^#{1,6}\s+(.*)$", path.read_text(), re.MULTILINE)
    }


def test_doc_pages_exist():
    for page in ("index", "quickstart", "architecture", "observability", "cli"):
        assert (REPO / "docs" / f"{page}.md").exists(), f"docs/{page}.md missing"


@pytest.mark.parametrize("doc", DOC_FILES, ids=lambda p: str(p.relative_to(REPO)))
def test_relative_links_resolve(doc):
    broken = []
    for target in _links(doc):
        if target.startswith(EXTERNAL):
            continue
        target, _, fragment = target.partition("#")
        resolved = (doc.parent / target).resolve() if target else doc
        if target and not resolved.exists():
            broken.append(f"{target}: file not found")
            continue
        if fragment and resolved.suffix == ".md":
            if fragment not in _anchors(resolved):
                broken.append(f"{target}#{fragment}: no such heading")
    assert not broken, f"{doc.name}: " + "; ".join(broken)


def test_docs_linked_from_readme():
    readme_links = _links(REPO / "README.md")
    assert any("docs/" in t for t in readme_links), (
        "README.md must link into the docs/ tree"
    )
