"""Telemetry primitives: timers, counters, gauges, merge algebra."""

import pickle

import pytest

from repro.obs.telemetry import (
    Counter,
    Gauge,
    GaugeStats,
    StageStats,
    StageTimer,
    Telemetry,
)


class TestCounters:
    def test_count_accumulates(self):
        tel = Telemetry()
        tel.count("records")
        tel.count("records", 41)
        assert tel.counter("records") == 42

    def test_untouched_counter_is_zero(self):
        assert Telemetry().counter("never") == 0

    def test_standalone_counter(self):
        c = Counter("events")
        assert c.inc() == 1
        assert c.inc(9) == 10
        assert c.value == 10


class TestGauges:
    def test_gauge_tracks_peak(self):
        tel = Telemetry()
        for v in (3.0, 7.0, 5.0):
            tel.gauge("depth", v)
        assert tel.peak("depth") == 7.0
        assert tel.gauges["depth"].samples == 3

    def test_unsampled_gauge_peak_is_minus_inf(self):
        assert Telemetry().peak("never") == float("-inf")

    def test_standalone_gauge(self):
        g = Gauge("queue")
        g.set(4)
        g.set(2)
        assert g.peak == 4.0


class TestTimers:
    def test_timer_records_wall_and_cpu(self):
        tel = Telemetry()
        with tel.timer("stage"):
            sum(range(1000))
        stats = tel.stage("stage")
        assert stats.calls == 1
        assert stats.wall_s >= 0.0
        assert stats.cpu_s >= 0.0

    def test_timer_nesting_builds_paths(self):
        tel = Telemetry()
        with tel.timer("outer"):
            with tel.timer("inner"):
                pass
            with tel.timer("inner"):
                pass
        assert set(tel.timers) == {"outer", "outer/inner"}
        assert tel.stage("outer/inner").calls == 2
        assert tel.stage("outer").calls == 1

    def test_timer_recorded_on_exception(self):
        tel = Telemetry()
        with pytest.raises(RuntimeError):
            with tel.timer("boom"):
                raise RuntimeError("x")
        assert tel.stage("boom").calls == 1
        # The stack unwound, so a later timer is not nested under "boom".
        with tel.timer("after"):
            pass
        assert "after" in tel.timers

    def test_standalone_stage_timer(self):
        with StageTimer("bench") as t:
            sum(range(1000))
        assert t.wall_s >= 0.0
        assert t.cpu_s >= 0.0


class TestMerge:
    def _sample(self, n):
        tel = Telemetry()
        tel.count("records", n)
        tel.gauge("depth", float(n))
        tel.timers["stage"] = StageStats(calls=1, wall_s=float(n), cpu_s=0.5)
        return tel

    def test_merge_sums_counters_and_timers(self):
        a, b = self._sample(10), self._sample(32)
        a.merge(b)
        assert a.counter("records") == 42
        assert a.stage("stage").calls == 2
        assert a.stage("stage").wall_s == 42.0
        assert a.peak("depth") == 32.0

    def test_merge_order_independent(self):
        """sum/max are commutative+associative: shard completion order
        cannot change merged totals."""
        parts = [self._sample(n) for n in (3, 1, 2)]
        fwd = Telemetry()
        for p in parts:
            fwd.merge(p)
        rev = Telemetry()
        for p in reversed([self._sample(n) for n in (3, 1, 2)]):
            rev.merge(p)
        assert fwd.as_dict() == rev.as_dict()

    def test_merge_prefix(self):
        a = Telemetry()
        a.merge(self._sample(5), prefix="shard0/")
        assert a.counter("shard0/records") == 5
        assert "shard0/stage" in a.timers


class TestTransport:
    def test_dict_round_trip(self):
        tel = Telemetry()
        tel.count("c", 3)
        tel.gauge("g", 9.5)
        with tel.timer("t"):
            pass
        back = Telemetry.from_dict(tel.as_dict())
        assert back.as_dict() == tel.as_dict()

    def test_pickle_round_trip(self):
        tel = Telemetry()
        tel.count("c", 7)
        tel.gauge("g", 1.0)
        with tel.timer("t"):
            pass
        back = pickle.loads(pickle.dumps(tel))
        assert back.as_dict() == tel.as_dict()

    def test_bool(self):
        assert not Telemetry()
        tel = Telemetry()
        tel.count("x")
        assert tel

    def test_gauge_stats_round_trip(self):
        g = GaugeStats()
        g.sample(3.0)
        assert GaugeStats.from_dict(g.as_dict()) == g
