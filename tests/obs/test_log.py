"""Structured logger: level filtering, env resolution, both formats."""

import io
import json

import pytest

from repro.obs import log as obslog
from repro.obs.log import ENV_FORMAT, ENV_LEVEL, configure, get_logger, reset


@pytest.fixture(autouse=True)
def clean_config(monkeypatch):
    monkeypatch.delenv(ENV_LEVEL, raising=False)
    monkeypatch.delenv(ENV_FORMAT, raising=False)
    reset()
    yield
    reset()


def capture(level=None, fmt=None):
    stream = io.StringIO()
    configure(level=level, fmt=fmt, stream=stream)
    return stream


class TestLevels:
    def test_default_threshold_is_warning(self):
        stream = capture()
        log = get_logger("t")
        log.info("quiet")
        log.warning("loud")
        out = stream.getvalue()
        assert "quiet" not in out
        assert "loud" in out

    def test_debug_level_opens_everything(self):
        stream = capture(level="debug")
        get_logger("t").debug("noise", n=1)
        assert "noise" in stream.getvalue()

    def test_off_silences_errors_too(self):
        stream = capture(level="off")
        get_logger("t").error("fatal")
        assert stream.getvalue() == ""

    def test_env_var_sets_level(self, monkeypatch):
        stream = capture()
        monkeypatch.setenv(ENV_LEVEL, "info")
        get_logger("t").info("via-env")
        assert "via-env" in stream.getvalue()

    def test_configure_beats_env(self, monkeypatch):
        monkeypatch.setenv(ENV_LEVEL, "debug")
        stream = capture(level="error")
        get_logger("t").warning("suppressed")
        assert stream.getvalue() == ""

    def test_unknown_level_rejected(self):
        with pytest.raises(ValueError):
            configure(level="verbose")

    def test_enabled_for(self):
        configure(level="info")
        log = get_logger("t")
        assert log.enabled_for("info")
        assert not log.enabled_for("debug")


class TestFormats:
    def test_human_format(self):
        stream = capture(level="info")
        get_logger("streaming.engine").info("run-complete", events=5, wall_s=1.25)
        line = stream.getvalue().strip()
        assert line.startswith("repro INFO")
        assert "streaming.engine" in line
        assert "events=5" in line
        assert "wall_s=1.25" in line

    def test_json_format_is_parseable(self):
        stream = capture(level="info", fmt="json")
        get_logger("t").info("evt", n=3, name="x")
        record = json.loads(stream.getvalue())
        assert record["level"] == "info"
        assert record["logger"] == "t"
        assert record["event"] == "evt"
        assert record["n"] == 3
        assert "ts" in record

    def test_env_var_sets_format(self, monkeypatch):
        stream = capture(level="info")
        monkeypatch.setenv(ENV_FORMAT, "json")
        get_logger("t").info("evt")
        json.loads(stream.getvalue())

    def test_unknown_format_rejected(self):
        with pytest.raises(ValueError):
            configure(fmt="xml")


class TestLoggers:
    def test_get_logger_is_cached(self):
        assert get_logger("same") is get_logger("same")

    def test_bad_env_level_falls_back_to_default(self, monkeypatch):
        monkeypatch.setenv(ENV_LEVEL, "nonsense")
        assert obslog.resolve_level() == obslog.LEVELS["warning"]
