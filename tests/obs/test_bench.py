"""Benchmark summaries: BENCH_engine.json derivation from raw results."""

import json

import pytest

from repro.errors import TraceError
from repro.obs.bench import (
    BENCH_SCHEMA_VERSION,
    main,
    summarize,
    summarize_benchmark,
    write_bench_summary,
)


def _raw(name="test_engine_one_minute[tvants]", wall=0.5, events=25000,
         transfers=40000, simulated_s=60.0):
    extra = {"events": events, "transfers": transfers}
    if simulated_s is not None:
        extra["simulated_s"] = simulated_s
    return {
        "datetime": "2026-08-06T00:00:00",
        "benchmarks": [
            {
                "name": name,
                "stats": {"min": wall, "mean": wall * 1.1, "rounds": 2},
                "extra_info": extra,
            }
        ],
    }


class TestSummarize:
    def test_throughput_metrics_derived(self):
        entry = summarize_benchmark(_raw()["benchmarks"][0])
        assert entry["wall_s_min"] == 0.5
        assert entry["events_per_s"] == pytest.approx(25000 / 0.5)
        assert entry["transfers_per_s"] == pytest.approx(40000 / 0.5)
        assert entry["wall_s_per_simulated_minute"] == pytest.approx(0.5)

    def test_scaling_bench_normalised_to_a_minute(self):
        entry = summarize_benchmark(
            _raw(wall=0.4, simulated_s=30.0)["benchmarks"][0]
        )
        assert entry["wall_s_per_simulated_minute"] == pytest.approx(0.8)

    def test_missing_extra_info_omits_derived_metrics(self):
        bench = _raw()["benchmarks"][0]
        bench["extra_info"] = {}
        entry = summarize_benchmark(bench)
        assert "events_per_s" not in entry
        assert "wall_s_per_simulated_minute" not in entry

    def test_baseline_speedup(self):
        base = _raw(wall=1.5)["benchmarks"][0]
        entry = summarize_benchmark(_raw(wall=0.5)["benchmarks"][0], base)
        assert entry["baseline_wall_s_min"] == 1.5
        assert entry["speedup_vs_baseline"] == pytest.approx(3.0)

    def test_document_shape(self):
        doc = summarize(_raw(), baseline=_raw(wall=1.0))
        assert doc["schema_version"] == BENCH_SCHEMA_VERSION
        (entry,) = doc["benchmarks"]
        assert entry["speedup_vs_baseline"] == pytest.approx(2.0)

    def test_unmatched_baseline_name_ignored(self):
        doc = summarize(_raw(), baseline=_raw(name="other_bench"))
        assert "speedup_vs_baseline" not in doc["benchmarks"][0]


class TestWriteSummary:
    def test_round_trip(self, tmp_path):
        raw = tmp_path / "raw.json"
        raw.write_text(json.dumps(_raw()))
        out = write_bench_summary(raw, tmp_path / "BENCH_engine.json")
        doc = json.loads(out.read_text())
        assert doc["benchmarks"][0]["name"] == "test_engine_one_minute[tvants]"

    def test_missing_input_raises(self, tmp_path):
        with pytest.raises(TraceError):
            write_bench_summary(tmp_path / "absent.json")

    def test_not_benchmark_json_raises(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("{}")
        with pytest.raises(TraceError):
            write_bench_summary(bad)

    def test_cli_main(self, tmp_path, capsys):
        raw = tmp_path / "raw.json"
        base = tmp_path / "base.json"
        raw.write_text(json.dumps(_raw(wall=0.5)))
        base.write_text(json.dumps(_raw(wall=1.5)))
        out = tmp_path / "BENCH_engine.json"
        rc = main([str(raw), "-o", str(out), "--baseline", str(base)])
        assert rc == 0
        assert out.exists()
        printed = capsys.readouterr().out
        assert "3.00x vs baseline" in printed
