"""Benchmark summaries: BENCH_engine.json derivation from raw results."""

import json

import pytest

from repro.errors import TraceError
from repro.obs.bench import (
    BENCH_SCHEMA_VERSION,
    check_regressions,
    latest_by_name,
    load_summary,
    main,
    migrate_summary,
    summarize,
    summarize_benchmark,
    write_bench_summary,
)


def _raw(name="test_engine_one_minute[tvants]", wall=0.5, events=25000,
         transfers=40000, simulated_s=60.0):
    extra = {"events": events, "transfers": transfers}
    if simulated_s is not None:
        extra["simulated_s"] = simulated_s
    return {
        "datetime": "2026-08-06T00:00:00",
        "benchmarks": [
            {
                "name": name,
                "stats": {"min": wall, "mean": wall * 1.1, "rounds": 2},
                "extra_info": extra,
            }
        ],
    }


class TestSummarize:
    def test_throughput_metrics_derived(self):
        entry = summarize_benchmark(_raw()["benchmarks"][0])
        assert entry["wall_s_min"] == 0.5
        assert entry["events_per_s"] == pytest.approx(25000 / 0.5)
        assert entry["transfers_per_s"] == pytest.approx(40000 / 0.5)
        assert entry["wall_s_per_simulated_minute"] == pytest.approx(0.5)

    def test_scaling_bench_normalised_to_a_minute(self):
        entry = summarize_benchmark(
            _raw(wall=0.4, simulated_s=30.0)["benchmarks"][0]
        )
        assert entry["wall_s_per_simulated_minute"] == pytest.approx(0.8)

    def test_missing_extra_info_omits_derived_metrics(self):
        bench = _raw()["benchmarks"][0]
        bench["extra_info"] = {}
        entry = summarize_benchmark(bench)
        assert "events_per_s" not in entry
        assert "wall_s_per_simulated_minute" not in entry

    def test_baseline_speedup(self):
        base = _raw(wall=1.5)["benchmarks"][0]
        entry = summarize_benchmark(_raw(wall=0.5)["benchmarks"][0], base)
        assert entry["baseline_wall_s_min"] == 1.5
        assert entry["speedup_vs_baseline"] == pytest.approx(3.0)

    def test_document_shape(self):
        doc = summarize(_raw(), baseline=_raw(wall=1.0))
        assert doc["schema_version"] == BENCH_SCHEMA_VERSION
        (entry,) = doc["benchmarks"]
        assert entry["speedup_vs_baseline"] == pytest.approx(2.0)

    def test_unmatched_baseline_name_ignored(self):
        doc = summarize(_raw(), baseline=_raw(name="other_bench"))
        assert "speedup_vs_baseline" not in doc["benchmarks"][0]


class TestWriteSummary:
    def test_round_trip(self, tmp_path):
        raw = tmp_path / "raw.json"
        raw.write_text(json.dumps(_raw()))
        out = write_bench_summary(raw, tmp_path / "BENCH_engine.json")
        doc = json.loads(out.read_text())
        assert doc["benchmarks"][0]["name"] == "test_engine_one_minute[tvants]"

    def test_missing_input_raises(self, tmp_path):
        with pytest.raises(TraceError):
            write_bench_summary(tmp_path / "absent.json")

    def test_not_benchmark_json_raises(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("{}")
        with pytest.raises(TraceError):
            write_bench_summary(bad)

    def test_cli_main(self, tmp_path, capsys):
        raw = tmp_path / "raw.json"
        base = tmp_path / "base.json"
        raw.write_text(json.dumps(_raw(wall=0.5)))
        base.write_text(json.dumps(_raw(wall=1.5)))
        out = tmp_path / "BENCH_engine.json"
        rc = main([str(raw), "-o", str(out), "--baseline", str(base)])
        assert rc == 0
        assert out.exists()
        printed = capsys.readouterr().out
        assert "3.00x vs baseline" in printed


class TestAppendLog:
    def test_append_keeps_earlier_entries(self, tmp_path):
        out = tmp_path / "BENCH_engine.json"
        raw1 = tmp_path / "run1.json"
        raw2 = tmp_path / "run2.json"
        raw1.write_text(json.dumps(_raw(wall=1.0)))
        doc2 = _raw(wall=0.5)
        doc2["datetime"] = "2026-08-07T00:00:00"
        raw2.write_text(json.dumps(doc2))
        write_bench_summary(raw1, out)
        write_bench_summary(raw2, out, append=True)
        doc = json.loads(out.read_text())
        assert len(doc["benchmarks"]) == 2
        assert [e["wall_s_min"] for e in doc["benchmarks"]] == [1.0, 0.5]
        # Entries carry their own run timestamps.
        assert [e["recorded"] for e in doc["benchmarks"]] == [
            "2026-08-06T00:00:00",
            "2026-08-07T00:00:00",
        ]

    def test_speedup_vs_previous(self, tmp_path):
        out = tmp_path / "BENCH_engine.json"
        raw1 = tmp_path / "run1.json"
        raw2 = tmp_path / "run2.json"
        raw1.write_text(json.dumps(_raw(wall=1.0)))
        raw2.write_text(json.dumps(_raw(wall=0.5)))
        write_bench_summary(raw1, out)
        write_bench_summary(raw2, out, append=True)
        doc = json.loads(out.read_text())
        assert "speedup_vs_previous" not in doc["benchmarks"][0]
        assert doc["benchmarks"][1]["speedup_vs_previous"] == pytest.approx(2.0)

    def test_without_append_overwrites(self, tmp_path):
        out = tmp_path / "BENCH_engine.json"
        raw = tmp_path / "raw.json"
        raw.write_text(json.dumps(_raw(wall=1.0)))
        write_bench_summary(raw, out)
        write_bench_summary(raw, out)
        doc = json.loads(out.read_text())
        assert len(doc["benchmarks"]) == 1

    def test_latest_by_name_last_wins(self):
        doc = {"benchmarks": [{"name": "a", "wall_s_min": 1.0},
                              {"name": "b", "wall_s_min": 2.0},
                              {"name": "a", "wall_s_min": 0.5}]}
        latest = latest_by_name(doc)
        assert latest["a"]["wall_s_min"] == 0.5
        assert latest["b"]["wall_s_min"] == 2.0


class TestMigration:
    def test_v1_entries_inherit_file_datetime(self):
        v1 = {
            "datetime": "2026-08-01T12:00:00",
            "benchmarks": [{"name": "a", "wall_s_min": 1.0}],
        }
        doc = migrate_summary(v1)
        assert doc["schema_version"] == BENCH_SCHEMA_VERSION
        assert doc["benchmarks"][0]["recorded"] == "2026-08-01T12:00:00"

    def test_v2_untouched(self):
        v2 = {
            "schema_version": BENCH_SCHEMA_VERSION,
            "benchmarks": [{"name": "a", "recorded": "x"}],
        }
        assert migrate_summary(v2) is v2

    def test_unknown_schema_rejected(self):
        with pytest.raises(TraceError):
            migrate_summary({"schema_version": 99, "benchmarks": []})

    def test_load_summary_migrates_v1_file(self, tmp_path):
        path = tmp_path / "old.json"
        path.write_text(json.dumps({
            "datetime": "2026-08-01T12:00:00",
            "benchmarks": [{"name": "a", "wall_s_min": 1.0}],
        }))
        doc = load_summary(path)
        assert doc["benchmarks"][0]["recorded"] == "2026-08-01T12:00:00"

    def test_load_summary_missing_raises(self, tmp_path):
        with pytest.raises(TraceError):
            load_summary(tmp_path / "absent.json")


class TestRegressionGate:
    def _summary(self, wall):
        raw = _raw(wall=wall)
        return summarize(raw)

    def test_within_tolerance_passes(self):
        # 25000 events fixed: halving events/s means doubling wall time.
        new, ref = self._summary(0.55), self._summary(0.5)
        assert check_regressions(new, ref, max_regression=0.20) == []

    def test_beyond_tolerance_fails(self):
        new, ref = self._summary(1.0), self._summary(0.5)
        failures = check_regressions(new, ref, max_regression=0.20)
        assert len(failures) == 1
        assert "events/s fell 50.0%" in failures[0]

    def test_unmatched_names_skipped(self):
        new = summarize(_raw(name="only_new", wall=9.0))
        ref = summarize(_raw(name="only_ref", wall=0.1))
        assert check_regressions(new, ref) == []

    def _rss_summary(self, rss_mb, wall=0.5):
        raw = _raw(wall=wall)
        raw["benchmarks"][0]["extra_info"]["peak_rss_mb"] = rss_mb
        return summarize(raw)

    def test_rss_within_tolerance_passes(self):
        new, ref = self._rss_summary(1100.0), self._rss_summary(1000.0)
        assert check_regressions(new, ref, max_rss_regression=0.25) == []

    def test_rss_growth_beyond_tolerance_fails(self):
        new, ref = self._rss_summary(2000.0), self._rss_summary(1000.0)
        failures = check_regressions(new, ref, max_rss_regression=0.25)
        assert len(failures) == 1
        assert "peak RSS grew 100.0%" in failures[0]

    def test_rss_gate_skips_entries_without_the_figure(self):
        # Only the scale benchmarks record RSS; plain throughput entries
        # must never trip the memory gate.
        new, ref = self._summary(0.5), self._rss_summary(1000.0)
        assert check_regressions(new, ref, max_rss_regression=0.0) == []

    def test_rss_and_throughput_gates_are_independent(self):
        new = self._rss_summary(2000.0, wall=1.0)
        ref = self._rss_summary(1000.0, wall=0.5)
        failures = check_regressions(
            new, ref, max_regression=0.20, max_rss_regression=0.25
        )
        assert len(failures) == 2

    def test_cli_max_rss_regression_flag(self, tmp_path):
        committed = tmp_path / "committed.json"
        raw_ref = _raw(wall=0.5)
        raw_ref["benchmarks"][0]["extra_info"]["peak_rss_mb"] = 1000.0
        ref_path = tmp_path / "ref_raw.json"
        ref_path.write_text(json.dumps(raw_ref))
        write_bench_summary(ref_path, committed)
        raw_new = _raw(wall=0.5)
        raw_new["benchmarks"][0]["extra_info"]["peak_rss_mb"] = 1400.0
        new_path = tmp_path / "new_raw.json"
        new_path.write_text(json.dumps(raw_new))
        out = tmp_path / "out.json"
        args = [str(new_path), "-o", str(out), "--check-against", str(committed)]
        assert main(args) == 2  # +40% RSS beyond the 25% default
        assert main(args + ["--max-rss-regression", "0.5"]) == 0

    def test_compares_latest_entries_only(self):
        # The reference log holds a slow old entry and a fast latest one;
        # the gate must use the latest.
        ref = summarize(_raw(wall=0.5), previous=summarize(_raw(wall=2.0)))
        new = self._summary(1.0)
        assert check_regressions(new, ref, max_regression=0.20)

    def test_cli_exit_codes(self, tmp_path, capsys):
        raw = tmp_path / "raw.json"
        raw.write_text(json.dumps(_raw(wall=1.0)))
        committed = tmp_path / "committed.json"
        fast = tmp_path / "fast_raw.json"
        fast.write_text(json.dumps(_raw(wall=0.5)))
        write_bench_summary(fast, committed)
        out = tmp_path / "out.json"
        rc = main([str(raw), "-o", str(out), "--check-against", str(committed)])
        assert rc == 2
        assert "REGRESSION" in capsys.readouterr().out
        rc = main([str(raw), "-o", str(out), "--check-against", str(committed),
                   "--max-regression", "0.6"])
        assert rc == 0
        assert "regression gate: ok" in capsys.readouterr().out

    def test_cli_check_against_output_file_uses_pre_run_state(self, tmp_path):
        # --check-against naming the output file must gate against the
        # committed (pre-run) state, not the freshly appended one.
        out = tmp_path / "BENCH_engine.json"
        fast = tmp_path / "fast_raw.json"
        slow = tmp_path / "slow_raw.json"
        fast.write_text(json.dumps(_raw(wall=0.5)))
        slow.write_text(json.dumps(_raw(wall=1.0)))
        write_bench_summary(fast, out)
        rc = main([str(slow), "-o", str(out), "--append",
                   "--check-against", str(out)])
        assert rc == 2
