"""Run manifests: digests, round-trips, campaign extraction."""

import json

import pytest

from repro.errors import TraceError
from repro.experiments.campaign import CampaignConfig, run_campaign
from repro.obs.manifest import (
    MANIFEST_SCHEMA_VERSION,
    RunManifest,
    config_digest,
    manifest_from_campaign,
    read_manifest,
    render_manifest_diff,
    render_manifest_summary,
    write_manifest,
)

SMALL = dict(duration_s=25.0, scale=0.3)


@pytest.fixture(scope="module")
def campaign():
    return run_campaign(CampaignConfig(apps=("tvants",), **SMALL))


@pytest.fixture(scope="module")
def manifest(campaign):
    return manifest_from_campaign(campaign, command=["campaign", "--apps", "tvants"])


class TestConfigDigest:
    def test_stable_across_key_order(self):
        assert config_digest({"a": 1, "b": 2}) == config_digest({"b": 2, "a": 1})

    def test_sensitive_to_values(self):
        assert config_digest({"seed": 1}) != config_digest({"seed": 2})

    def test_short_hex(self):
        digest = config_digest({"x": 1})
        assert len(digest) == 12
        int(digest, 16)


class TestRoundTrip:
    def test_write_read_identity(self, manifest, tmp_path):
        path = write_manifest(tmp_path / "m", manifest)
        assert path.suffix == ".json"
        back = read_manifest(path)
        assert back.to_dict() == manifest.to_dict()

    def test_file_is_plain_json(self, manifest, tmp_path):
        path = write_manifest(tmp_path / "m.json", manifest)
        data = json.loads(path.read_text())
        assert data["schema_version"] == MANIFEST_SCHEMA_VERSION
        assert data["kind"] == "campaign"

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(TraceError):
            read_manifest(tmp_path / "absent.json")

    def test_bad_json_raises(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        with pytest.raises(TraceError):
            read_manifest(bad)

    def test_wrong_schema_version_raises(self, manifest, tmp_path):
        path = write_manifest(tmp_path / "m.json", manifest)
        data = json.loads(path.read_text())
        data["schema_version"] = 999
        path.write_text(json.dumps(data))
        with pytest.raises(TraceError):
            read_manifest(path)

    def test_unknown_keys_ignored(self):
        m = RunManifest.from_dict({"kind": "campaign", "future_field": 1})
        assert m.kind == "campaign"


class TestCampaignManifest:
    def test_config_and_seeds_recorded(self, campaign, manifest):
        cfg = campaign.config
        assert tuple(manifest.config["apps"]) == cfg.apps
        assert manifest.config["duration_s"] == cfg.duration_s
        assert manifest.config_hash
        assert manifest.seeds["campaign"] == cfg.seed
        assert manifest.seeds["world"] == campaign.world.config.seed
        assert manifest.seeds["engine"]["tvants"] == cfg.seed

    def test_shard_outcomes_recorded(self, manifest):
        (shard,) = manifest.shards
        assert shard["app"] == "tvants"
        assert shard["ok"] is True
        assert shard["retries"] == 0
        assert shard["failed_stages"] == []
        # Per-shard stage timings came through the telemetry pipe.
        assert "shard/simulate" in shard["telemetry"]["timers"]

    def test_engine_and_capture_counters_present(self, manifest):
        counters = manifest.telemetry["counters"]
        assert counters["engine/events"] > 0
        assert counters["engine/transfer_records"] > 0
        assert counters["engine/bytes_recorded"] > 0
        assert counters["capture/records_in"] >= counters["capture/records_kept"] > 0
        assert manifest.telemetry["gauges"]["engine/peak_queue_depth"]["peak"] > 0

    def test_per_kind_event_counters_present(self, manifest):
        counters = manifest.telemetry["counters"]
        dispatch = {k: v for k, v in counters.items() if k.startswith("engine/dispatch/")}
        schedule = {k: v for k, v in counters.items() if k.startswith("engine/schedule/")}
        assert dispatch and schedule
        # Every dispatched kind was scheduled at least as often, and the
        # per-kind dispatch counts sum to the total event count.
        for key, count in dispatch.items():
            kind = key.removeprefix("engine/dispatch/")
            assert schedule[f"engine/schedule/{kind}"] >= count
        assert sum(dispatch.values()) == counters["engine/events"]
        assert counters["engine/events_scheduled"] == sum(schedule.values())

    def test_artifacts_default_empty_and_round_trips(self, manifest, tmp_path):
        assert manifest.artifacts == {}
        manifest2 = RunManifest.from_dict(manifest.to_dict())
        manifest2.artifacts["profile"] = "run.pstats"
        path = write_manifest(tmp_path / "m.json", manifest2)
        assert read_manifest(path).artifacts == {"profile": "run.pstats"}

    def test_per_stage_timings_present(self, manifest):
        timers = manifest.telemetry["timers"]
        for stage in ("campaign", "campaign/shards", "shard", "shard/simulate"):
            assert timers[stage]["wall_s"] >= 0.0
            assert timers[stage]["calls"] >= 1

    def test_ok_property(self, manifest):
        assert manifest.ok

    def test_peak_rss_recorded(self, manifest):
        # The shard worker samples getrusage at finalize; the campaign
        # peak-merges across shards and the manifest surfaces the result.
        rss = manifest.resources.get("peak_rss_mb")
        assert rss is not None
        assert 1.0 < rss < 1_000_000.0  # a plausible resident set, in MB

    def test_resources_round_trip(self, manifest, tmp_path):
        path = write_manifest(tmp_path / "m.json", manifest)
        assert read_manifest(path).resources == manifest.resources

    def test_command_recorded(self, manifest):
        assert manifest.command == ["campaign", "--apps", "tvants"]

    def test_failed_campaign_manifest(self, monkeypatch):
        import repro.experiments.campaign as campaign_mod
        from repro.errors import SimulationError

        def explode(profile, **kwargs):
            raise SimulationError("boom")

        monkeypatch.setattr(campaign_mod, "simulate", explode)
        failed = run_campaign(CampaignConfig(apps=("tvants",), **SMALL))
        m = manifest_from_campaign(failed)
        assert not m.ok
        (shard,) = m.shards
        assert shard["ok"] is False
        assert shard["failed_stages"] == ["simulate"]
        assert m.failures[0]["stage"] == "simulate"
        assert "boom" in m.failures[0]["error"]


class TestSummary:
    def test_summary_renders_tables(self, manifest):
        out = render_manifest_summary(manifest)
        assert "SHARDS" in out
        assert "STAGE TIMERS" in out
        assert "COUNTERS" in out
        assert "tvants" in out
        assert "engine/events" in out

    def test_summary_surfaces_peak_rss(self, manifest):
        out = render_manifest_summary(manifest)
        assert "RESOURCES" in out
        assert "peak_rss_mb" in out

    def test_summary_lists_failures(self, manifest):
        broken = RunManifest.from_dict(manifest.to_dict())
        broken.failures = [
            {"app": "tvants", "stage": "simulate", "attempt": 0, "seed": 42,
             "error": "synthetic"}
        ]
        out = render_manifest_summary(broken)
        assert "FAILURES" in out
        assert "synthetic" in out


def _synthetic_manifest(seed=1, wall=2.0, events=1000):
    """A minimal hand-built manifest (no campaign run needed)."""
    config = {"seed": seed, "duration_s": 30.0, "apps": ["tvants"]}
    return RunManifest(
        kind="campaign",
        config=config,
        config_hash=config_digest(config),
        telemetry={
            "timers": {"shard.tvants.simulate": {"calls": 1, "wall_s": wall,
                                                 "cpu_s": wall * 0.9}},
            "counters": {"engine/events": events},
            "gauges": {"engine/queue_depth": {"peak": 64.0, "samples": 1}},
        },
    )


class TestManifestDiff:
    def test_same_config_reports_match(self):
        out = render_manifest_diff(_synthetic_manifest(), _synthetic_manifest())
        assert "configs match" in out
        assert "CONFIG MISMATCH" not in out

    def test_differing_config_lists_changed_keys(self):
        out = render_manifest_diff(
            _synthetic_manifest(seed=1), _synthetic_manifest(seed=2)
        )
        assert "CONFIG MISMATCH" in out
        assert "CONFIG CHANGES" in out
        assert "seed" in out

    def test_timings_and_counters_compared(self):
        out = render_manifest_diff(
            _synthetic_manifest(wall=4.0, events=1000),
            _synthetic_manifest(wall=2.0, events=1100),
        )
        assert "STAGE TIMERS" in out
        assert "2.00x" in out  # 4.0s → 2.0s speedup
        assert "+100" in out  # event-count delta
        assert "engine/queue_depth (peak)" in out

    def test_stage_missing_on_one_side(self):
        a = _synthetic_manifest()
        b = _synthetic_manifest()
        b.telemetry = {}
        out = render_manifest_diff(a, b)
        assert "shard.tvants.simulate" in out

    def test_real_manifest_diffs_against_itself(self, manifest):
        out = render_manifest_diff(manifest, manifest)
        assert "configs match" in out
        assert "STAGE TIMERS" in out
