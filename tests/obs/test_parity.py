"""The cardinal invariant: observability never perturbs results.

Telemetry hooks and log emission must be pure observers — the scientific
outputs (transfer logs, flow tables, preference indices) must be
byte-identical whether telemetry/logging is collected or not, and
regardless of log verbosity.
"""

import io

import numpy as np
import pytest

from repro.core.framework import AwarenessAnalyzer
from repro.experiments.campaign import CampaignConfig, run_campaign
from repro.heuristics.registry import IpRegistry
from repro.obs.log import configure, reset
from repro.obs.telemetry import Telemetry
from repro.trace.flows import build_flow_table
from repro import run_experiment

SMALL = dict(duration_s=25.0, scale=0.3)


@pytest.fixture(autouse=True)
def clean_log_config():
    reset()
    yield
    reset()


def _table_bytes(report):
    """Every index of a report, as a deterministic tuple."""
    cells = []
    for metric in sorted(report.metric_names):
        scores = report[metric]
        for direction in (scores.download, scores.upload):
            cells.append(
                (direction.P, direction.B, direction.P_prime, direction.B_prime)
            )
    return repr(cells)


class TestTelemetryParity:
    def test_analysis_identical_with_and_without_telemetry(self):
        result = run_experiment("tvants", duration_s=25.0, seed=3)
        registry = IpRegistry.from_hosts(result.hosts)
        world_paths = result.world.paths

        flows_plain = build_flow_table(
            result.transfers, result.signaling, result.hosts, world_paths
        )
        report_plain = AwarenessAnalyzer(registry).analyze(flows_plain)

        tel = Telemetry()
        flows_obs = build_flow_table(
            result.transfers, result.signaling, result.hosts, world_paths,
            telemetry=tel,
        )
        report_obs = AwarenessAnalyzer(registry).analyze(flows_obs, telemetry=tel)

        assert np.array_equal(flows_plain.flows, flows_obs.flows)
        assert _table_bytes(report_plain) == _table_bytes(report_obs)
        # ... and the telemetry actually observed something.
        assert tel.counter("capture/records_in") > 0
        assert tel.counter("heuristics/flows_classified") > 0

    def test_campaign_transfers_identical_across_log_levels(self):
        sink = io.StringIO()
        configure(level="debug", stream=sink)
        noisy = run_campaign(CampaignConfig(apps=("tvants",), **SMALL))
        assert sink.getvalue()  # debug logging actually fired

        reset()
        configure(level="off")
        silent = run_campaign(CampaignConfig(apps=("tvants",), **SMALL))

        assert np.array_equal(
            noisy["tvants"].result.transfers, silent["tvants"].result.transfers
        )
        assert np.array_equal(
            noisy["tvants"].flows.flows, silent["tvants"].flows.flows
        )
        assert _table_bytes(noisy["tvants"].report) == _table_bytes(
            silent["tvants"].report
        )

    def test_telemetry_totals_deterministic_across_runs(self):
        """Counters are functions of the (seeded) run, not of wall time."""
        a = run_campaign(CampaignConfig(apps=("tvants",), **SMALL))
        b = run_campaign(CampaignConfig(apps=("tvants",), **SMALL))
        assert a.telemetry.counters == b.telemetry.counters

        def run_gauges(tel):
            # resources/* gauges sample getrusage high-water marks — they
            # measure the *process* (allocator layout, interpreter warmup),
            # not the seeded run, and are the one sanctioned exception.
            return {
                k: v for k, v in tel.gauges.items()
                if not k.startswith("resources/")
            }

        assert run_gauges(a.telemetry) == run_gauges(b.telemetry)
        assert a.telemetry.peak("resources/peak_rss_mb") > 0
