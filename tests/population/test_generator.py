"""Swarm generation on the synthetic Internet."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.population.demographics import Demographics, cctv1_audience
from repro.population.generator import PopulationConfig, generate_population
from repro.topology.world import PROBE_AS_NUMBERS, World


@pytest.fixture(scope="module")
def pop_world():
    return World()


def _gen(world, size=600, seed=3, **demo_kw):
    demo = cctv1_audience(**demo_kw) if demo_kw else None
    return generate_population(
        world, PopulationConfig(size=size, demographics=demo),
        np.random.default_rng(seed),
    )


class TestConfig:
    def test_negative_size_rejected(self):
        with pytest.raises(ConfigurationError):
            PopulationConfig(size=-1)

    def test_bad_unix_fraction_rejected(self):
        with pytest.raises(ConfigurationError):
            PopulationConfig(size=10, unix_fraction=2.0)

    def test_zero_size_ok(self, pop_world):
        assert _gen(pop_world, size=0) == []


class TestComposition:
    def test_size(self, pop_world):
        assert len(_gen(pop_world)) == 600

    def test_unique_ids_and_ips(self, pop_world):
        peers = _gen(pop_world)
        assert len({p.peer_id for p in peers}) == len(peers)
        assert len({p.endpoint.ip for p in peers}) == len(peers)

    def test_china_dominates(self, pop_world):
        peers = _gen(pop_world)
        cn = sum(1 for p in peers if p.endpoint.country_code == "CN")
        assert cn / len(peers) > 0.5

    def test_highbw_fraction_plausible(self, pop_world):
        peers = _gen(pop_world, size=1500)
        frac = np.mean([p.is_high_bandwidth for p in peers])
        assert 0.2 < frac < 0.55

    def test_some_campus_civilians(self, pop_world):
        peers = _gen(pop_world, size=1500)
        campus_asns = {asn for asn, _ in PROBE_AS_NUMBERS.values()}
        in_campus = [p for p in peers if p.endpoint.asn in campus_asns]
        assert len(in_campus) > 0
        # Campus civilians belong to probe countries only.
        assert all(
            p.endpoint.country_code in ("IT", "FR", "HU", "PL") for p in in_campus
        )

    def test_probe_as_fraction_zero_means_no_civilians(self, pop_world):
        peers = _gen(pop_world, size=800, probe_as_fraction=0.0)
        campus_asns = {asn for asn, _ in PROBE_AS_NUMBERS.values()}
        assert not any(p.endpoint.asn in campus_asns for p in peers)

    def test_ttl_mix(self, pop_world):
        peers = _gen(pop_world, size=1500)
        ttls = {p.endpoint.initial_ttl for p in peers}
        assert 128 in ttls
        unix = sum(1 for p in peers if p.endpoint.initial_ttl == 64)
        assert 0 < unix / len(peers) < 0.15

    def test_deterministic(self):
        w1, w2 = World(), World()
        p1 = _gen(w1, seed=9)
        p2 = _gen(w2, seed=9)
        assert [p.endpoint.ip for p in p1] == [p.endpoint.ip for p in p2]

    def test_seed_changes_population(self):
        w1, w2 = World(), World()
        p1 = _gen(w1, seed=1)
        p2 = _gen(w2, seed=2)
        assert [p.endpoint.country_code for p in p1] != [
            p.endpoint.country_code for p in p2
        ]

    def test_country_without_isp_falls_back(self, pop_world):
        demo = Demographics(country_weights={"CN": 1.0, "BR": 50.0})
        peers = generate_population(
            pop_world, PopulationConfig(size=50, demographics=demo),
            np.random.default_rng(0),
        )
        assert len(peers) == 50  # BR has an ISP in the default world; no crash
