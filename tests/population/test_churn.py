"""Session churn process."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ConfigurationError
from repro.population.churn import ChurnConfig, ChurnProcess, Session


class TestSession:
    def test_online_interval(self):
        s = Session(peer_id=0, join=10.0, leave=50.0)
        assert s.online_at(10.0)
        assert s.online_at(49.999)
        assert not s.online_at(9.999)
        assert not s.online_at(50.0)

    def test_duration(self):
        assert Session(0, 5.0, 12.5).duration == 7.5


class TestConfig:
    @pytest.mark.parametrize(
        "kw",
        [
            {"initial_fraction": -0.1},
            {"initial_fraction": 1.1},
            {"mean_session_s": 0},
            {"sigma": 0},
        ],
    )
    def test_invalid_rejected(self, kw):
        with pytest.raises(ConfigurationError):
            ChurnConfig(**kw)


class TestGenerate:
    def _gen(self, n=500, horizon=600.0, seed=0, **kw):
        return ChurnProcess.generate(
            list(range(n)), horizon, ChurnConfig(**kw), np.random.default_rng(seed)
        )

    def test_one_session_per_peer(self):
        proc = self._gen()
        assert len(proc) == 500
        assert {s.peer_id for s in proc.sessions} == set(range(500))

    def test_sessions_inside_horizon(self):
        proc = self._gen()
        for s in proc.sessions:
            assert 0.0 <= s.join <= s.leave <= 600.0

    def test_initial_fraction(self):
        proc = self._gen(n=2000, initial_fraction=0.75)
        at_zero = sum(1 for s in proc.sessions if s.join == 0.0)
        assert 0.68 < at_zero / 2000 < 0.82

    def test_all_initial(self):
        proc = self._gen(n=100, initial_fraction=1.0)
        assert all(s.join == 0.0 for s in proc.sessions)

    def test_none_initial(self):
        proc = self._gen(n=100, initial_fraction=0.0)
        assert all(s.join > 0.0 for s in proc.sessions)

    def test_mean_session_roughly_configured(self):
        proc = self._gen(n=4000, horizon=1e9, mean_session_s=1000.0, sigma=0.8)
        mean = np.mean([s.duration for s in proc.sessions])
        assert 800 < mean < 1250

    def test_online_queries_consistent(self):
        proc = self._gen(n=300)
        t = 300.0
        ids = proc.online_at(t)
        assert len(ids) == proc.online_count_at(t)
        for pid in ids:
            assert proc.session_of(pid).online_at(t)

    def test_deterministic(self):
        a = self._gen(seed=4)
        b = self._gen(seed=4)
        assert [(s.join, s.leave) for s in a.sessions] == [
            (s.join, s.leave) for s in b.sessions
        ]

    def test_bad_horizon_rejected(self):
        with pytest.raises(ConfigurationError):
            self._gen(horizon=0.0)

    @settings(max_examples=20, deadline=None)
    @given(st.floats(min_value=0.0, max_value=1.0), st.integers(1, 200))
    def test_property_sessions_clipped(self, frac, n):
        proc = ChurnProcess.generate(
            list(range(n)), 100.0,
            ChurnConfig(initial_fraction=frac, mean_session_s=50.0),
            np.random.default_rng(1),
        )
        assert all(s.leave <= 100.0 for s in proc.sessions)
