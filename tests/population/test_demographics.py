"""Audience demographics."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.population.demographics import Demographics, cctv1_audience


class TestValidation:
    def test_empty_weights_rejected(self):
        with pytest.raises(ConfigurationError):
            Demographics(country_weights={})

    def test_negative_weight_rejected(self):
        with pytest.raises(ConfigurationError):
            Demographics(country_weights={"CN": -1.0})

    def test_zero_sum_rejected(self):
        with pytest.raises(ConfigurationError):
            Demographics(country_weights={"CN": 0.0})

    def test_bad_probe_as_fraction_rejected(self):
        with pytest.raises(ConfigurationError):
            Demographics(country_weights={"CN": 1.0}, probe_as_fraction=1.5)


class TestNormalisation:
    def test_weights_normalise(self):
        demo = Demographics(country_weights={"CN": 3.0, "IT": 1.0})
        codes, probs = demo.normalised_weights()
        assert probs.sum() == pytest.approx(1.0)
        assert dict(zip(codes, probs))["CN"] == pytest.approx(0.75)

    def test_alignment(self):
        demo = Demographics(country_weights={"CN": 1.0, "IT": 2.0, "FR": 1.0})
        codes, probs = demo.normalised_weights()
        assert len(codes) == len(probs) == 3


class TestHighBwLookup:
    def test_explicit(self):
        demo = Demographics(
            country_weights={"CN": 1.0}, highbw_fraction={"CN": 0.4}
        )
        assert demo.highbw_for("CN") == 0.4

    def test_default(self):
        demo = Demographics(country_weights={"CN": 1.0}, default_highbw=0.25)
        assert demo.highbw_for("IT") == 0.25


class TestCctv1Audience:
    def test_china_dominates(self):
        codes, probs = cctv1_audience().normalised_weights()
        shares = dict(zip(codes, probs))
        assert shares["CN"] > 0.5
        assert shares["CN"] > 10 * shares["IT"]

    def test_probe_countries_present(self):
        demo = cctv1_audience()
        for cc in ("IT", "FR", "HU", "PL"):
            assert demo.country_weights.get(cc, 0) > 0

    def test_probability_mass_sums_to_one(self):
        _, probs = cctv1_audience().normalised_weights()
        assert np.isclose(probs.sum(), 1.0)
