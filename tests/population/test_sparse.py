"""Sparse swarm columns, lazy blocks and the alias sampler.

The sparse representation's contract has three legs:

* **determinism** — columns are a pure function of the single root draw
  (plus size and block size), independent of materialisation order;
* **laziness** — touching block *b* materialises blocks ``0..b`` and
  nothing beyond, and the whole population costs tens of bytes per peer,
  not the ~1 kB of the object directory;
* **fidelity** — the object view (:meth:`SparseSwarm.peers`) and the
  columns describe the same peers, and the drawn *distributions* match
  the dense generator's rules (access plans, campus placement, TTL mix)
  even though the streams differ.

:class:`AliasTable` is pinned separately: the engine's tracker sampler
uses the algebraically-equivalent two-valued fast path, so the general
table would otherwise lose coverage.
"""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.population.demographics import cctv1_audience
from repro.population.sparse import (
    DEFAULT_BLOCK_SIZE,
    AliasTable,
    SparseSwarmConfig,
    generate_sparse_swarm,
)
from repro.streaming.profiles import get_profile
from repro.topology.world import PROBE_AS_NUMBERS, World


@pytest.fixture(scope="module")
def sparse_world():
    return World()


def _swarm(world, size=5000, seed=3, block_size=1024, **cfg_kw):
    return generate_sparse_swarm(
        world,
        SparseSwarmConfig(size=size, block_size=block_size, **cfg_kw),
        np.random.default_rng(seed),
    )


class TestConfig:
    def test_negative_size_rejected(self):
        with pytest.raises(ConfigurationError):
            SparseSwarmConfig(size=-1)

    def test_bad_unix_fraction_rejected(self):
        with pytest.raises(ConfigurationError):
            SparseSwarmConfig(size=10, unix_fraction=1.5)

    def test_bad_block_size_rejected(self):
        with pytest.raises(ConfigurationError):
            SparseSwarmConfig(size=10, block_size=0)

    def test_zero_size_ok(self, sparse_world):
        swarm = _swarm(sparse_world, size=0)
        assert len(swarm) == 0
        assert len(swarm.columns()) == 0


class TestDeterminism:
    def test_single_rng_draw_consumed(self, sparse_world):
        """The swarm consumes exactly one draw from the population stream."""
        rng_a = np.random.default_rng(9)
        rng_b = np.random.default_rng(9)
        generate_sparse_swarm(
            sparse_world, SparseSwarmConfig(size=3000, block_size=512), rng_a
        )
        rng_b.integers(0, 2**63)
        # Both streams must now be in the same state.
        assert rng_a.integers(0, 2**31) == rng_b.integers(0, 2**31)

    def test_same_seed_same_columns(self):
        a = _swarm(World(), seed=7).columns()
        b = _swarm(World(), seed=7).columns()
        for name in type(a).__dataclass_fields__:
            assert np.array_equal(getattr(a, name), getattr(b, name)), name

    def test_materialisation_order_irrelevant(self):
        # Fresh worlds: IP assignment advances per-AS subnet cursors, so
        # two swarms sharing one world would differ for that reason alone.
        eager = _swarm(World(), seed=5)
        lazy = _swarm(World(), seed=5)
        eager_cols = eager.columns()          # all blocks, front to back
        lazy.block(lazy.n_blocks - 1)         # jump straight to the tail
        lazy_cols = lazy.columns()
        assert np.array_equal(eager_cols.ip, lazy_cols.ip)
        assert np.array_equal(eager_cols.up_bps, lazy_cols.up_bps)

    def test_block_size_is_part_of_identity(self):
        a = _swarm(World(), seed=5, block_size=512).columns()
        b = _swarm(World(), seed=5, block_size=1024).columns()
        assert not np.array_equal(a.up_bps, b.up_bps)


class TestLaziness:
    def test_blocks_materialise_on_demand(self, sparse_world):
        swarm = _swarm(sparse_world, size=5000, block_size=1024)
        assert swarm.n_blocks == 5
        assert swarm.materialised_blocks == 0
        swarm.block(2)
        assert swarm.materialised_blocks == 3  # 0..2, nothing beyond
        swarm.block(0)
        assert swarm.materialised_blocks == 3

    def test_block_out_of_range_rejected(self, sparse_world):
        swarm = _swarm(sparse_world, size=100, block_size=64)
        with pytest.raises(ConfigurationError):
            swarm.block(swarm.n_blocks)

    def test_memory_per_peer_is_tens_of_bytes(self, sparse_world):
        swarm = _swarm(sparse_world, size=20_000, block_size=DEFAULT_BLOCK_SIZE)
        per_peer = swarm.columns().nbytes / len(swarm)
        assert per_peer < 100  # the object directory costs ~1 kB/peer


class TestFidelity:
    def test_object_view_matches_columns(self, sparse_world):
        swarm = _swarm(sparse_world, size=600)
        cols = swarm.columns()
        peers = swarm.peers()
        assert len(peers) == len(cols) == 600
        for i in (0, 17, 599):
            p = peers[i]
            assert p.endpoint.ip == int(cols.ip[i])
            assert p.endpoint.asn == int(cols.asn[i])
            assert p.endpoint.country_code == str(cols.cc[i])
            assert p.endpoint.access.up_bps == float(cols.up_bps[i])
            assert p.endpoint.access.nat == bool(cols.nat[i])
            assert p.endpoint.initial_ttl == int(cols.initial_ttl[i])
            assert p.endpoint.subnet == int(cols.subnet[i])

    def test_unique_ips(self, sparse_world):
        cols = _swarm(sparse_world, size=5000).columns()
        assert len(np.unique(cols.ip)) == len(cols)

    def test_demographics_rules_hold(self, sparse_world):
        cols = _swarm(sparse_world, size=8000).columns()
        cn = np.mean(cols.cc == "CN")
        assert cn > 0.5  # CCTV-1 audience is China-dominated
        unix = np.mean(cols.initial_ttl == 64)
        assert 0 < unix < 0.15
        campus_asns = {asn for asn, _ in PROBE_AS_NUMBERS.values()}
        in_campus = np.isin(cols.asn, sorted(campus_asns))
        assert in_campus.any()
        assert set(np.unique(cols.cc[in_campus])) <= {"IT", "FR", "HU", "PL"}

    def test_probe_as_fraction_zero_means_no_campus(self, sparse_world):
        demo = cctv1_audience(probe_as_fraction=0.0)
        cols = _swarm(sparse_world, size=4000, demographics=demo).columns()
        campus_asns = {asn for asn, _ in PROBE_AS_NUMBERS.values()}
        assert not np.isin(cols.asn, sorted(campus_asns)).any()


class TestAliasTable:
    def test_rejects_bad_weights(self):
        for bad in ([], [-1.0, 2.0], [np.inf, 1.0], [0.0, 0.0]):
            with pytest.raises(ConfigurationError):
                AliasTable(np.array(bad, dtype=np.float64))

    def test_deterministic(self):
        table = AliasTable(np.array([1.0, 2.0, 3.0]))
        a = table.draw(np.random.default_rng(4), 100)
        b = table.draw(np.random.default_rng(4), 100)
        assert np.array_equal(a, b)

    def test_distribution_matches_weights(self):
        w = np.array([1.0, 3.0, 6.0])
        table = AliasTable(w)
        draws = table.draw(np.random.default_rng(1), 60_000)
        freq = np.bincount(draws, minlength=3) / len(draws)
        assert np.allclose(freq, w / w.sum(), atol=0.02)

    def test_uniform_weights_stay_uniform(self):
        table = AliasTable(np.ones(7))
        draws = table.draw(np.random.default_rng(2), 70_000)
        freq = np.bincount(draws, minlength=7) / len(draws)
        assert np.allclose(freq, 1 / 7, atol=0.02)


class TestScaledSwarm:
    """The validating resize used by sparse paper-scale profiles."""

    def test_scaled_routes_sparse_profiles_through_validation(self):
        prof = get_profile("napa-scale")
        shrunk = prof.scaled(0.05)
        assert shrunk.swarm_size == 9000
        assert shrunk.tracker_initial == prof.tracker_initial  # saturates

    def test_discovery_reach_overflow_is_an_error(self):
        prof = get_profile("napa-scale")
        with pytest.raises(ConfigurationError, match="discovery reach"):
            prof.scaled_swarm(prof.tracker_initial - 1)

    def test_no_silent_floor(self):
        prof = get_profile("napa-scale")
        with pytest.raises(ConfigurationError):
            prof.scaled_swarm(0)
        with pytest.raises(ConfigurationError):
            prof.scaled(1e-9)  # rounds to zero peers: error, not a clamp

    def test_dense_profiles_keep_legacy_floors(self):
        prof = get_profile("pplive")
        tiny = prof.scaled(1e-9)
        assert tiny.swarm_size == 10  # the historical clamp, unchanged
