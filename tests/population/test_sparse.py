"""Sparse swarm columns, lazy blocks and the alias sampler.

The sparse representation's contract has three legs:

* **determinism** — columns are a pure function of the single root draw
  (plus size and block size), independent of materialisation order;
* **laziness** — touching block *b* materialises blocks ``0..b`` and
  nothing beyond, and the whole population costs tens of bytes per peer,
  not the ~1 kB of the object directory;
* **fidelity** — the object view (:meth:`SparseSwarm.peers`) and the
  columns describe the same peers, and the drawn *distributions* match
  the dense generator's rules (access plans, campus placement, TTL mix)
  even though the streams differ.

:class:`AliasTable` is pinned separately: the engine's tracker sampler
uses the algebraically-equivalent two-valued fast path, so the general
table would otherwise lose coverage.
"""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.population.demographics import cctv1_audience
from repro.population.sparse import (
    DEFAULT_BLOCK_SIZE,
    AliasTable,
    IndexRemap,
    ScoreRowCache,
    SparseSwarmConfig,
    generate_sparse_swarm,
)
from repro.streaming.profiles import get_profile
from repro.topology.world import PROBE_AS_NUMBERS, World


@pytest.fixture(scope="module")
def sparse_world():
    return World()


def _swarm(world, size=5000, seed=3, block_size=1024, **cfg_kw):
    return generate_sparse_swarm(
        world,
        SparseSwarmConfig(size=size, block_size=block_size, **cfg_kw),
        np.random.default_rng(seed),
    )


class TestConfig:
    def test_negative_size_rejected(self):
        with pytest.raises(ConfigurationError):
            SparseSwarmConfig(size=-1)

    def test_bad_unix_fraction_rejected(self):
        with pytest.raises(ConfigurationError):
            SparseSwarmConfig(size=10, unix_fraction=1.5)

    def test_bad_block_size_rejected(self):
        with pytest.raises(ConfigurationError):
            SparseSwarmConfig(size=10, block_size=0)

    def test_zero_size_ok(self, sparse_world):
        swarm = _swarm(sparse_world, size=0)
        assert len(swarm) == 0
        assert len(swarm.columns()) == 0


class TestDeterminism:
    def test_single_rng_draw_consumed(self, sparse_world):
        """The swarm consumes exactly one draw from the population stream."""
        rng_a = np.random.default_rng(9)
        rng_b = np.random.default_rng(9)
        generate_sparse_swarm(
            sparse_world, SparseSwarmConfig(size=3000, block_size=512), rng_a
        )
        rng_b.integers(0, 2**63)
        # Both streams must now be in the same state.
        assert rng_a.integers(0, 2**31) == rng_b.integers(0, 2**31)

    def test_same_seed_same_columns(self):
        a = _swarm(World(), seed=7).columns()
        b = _swarm(World(), seed=7).columns()
        for name in type(a).__dataclass_fields__:
            assert np.array_equal(getattr(a, name), getattr(b, name)), name

    def test_materialisation_order_irrelevant(self):
        # Fresh worlds: IP assignment advances per-AS subnet cursors, so
        # two swarms sharing one world would differ for that reason alone.
        eager = _swarm(World(), seed=5)
        lazy = _swarm(World(), seed=5)
        eager_cols = eager.columns()          # all blocks, front to back
        lazy.block(lazy.n_blocks - 1)         # jump straight to the tail
        lazy_cols = lazy.columns()
        assert np.array_equal(eager_cols.ip, lazy_cols.ip)
        assert np.array_equal(eager_cols.up_bps, lazy_cols.up_bps)

    def test_block_size_is_part_of_identity(self):
        a = _swarm(World(), seed=5, block_size=512).columns()
        b = _swarm(World(), seed=5, block_size=1024).columns()
        assert not np.array_equal(a.up_bps, b.up_bps)


class TestLaziness:
    def test_blocks_materialise_on_demand(self, sparse_world):
        swarm = _swarm(sparse_world, size=5000, block_size=1024)
        assert swarm.n_blocks == 5
        assert swarm.materialised_blocks == 0
        swarm.block(2)
        assert swarm.materialised_blocks == 3  # 0..2, nothing beyond
        swarm.block(0)
        assert swarm.materialised_blocks == 3

    def test_block_out_of_range_rejected(self, sparse_world):
        swarm = _swarm(sparse_world, size=100, block_size=64)
        with pytest.raises(ConfigurationError):
            swarm.block(swarm.n_blocks)

    def test_memory_per_peer_is_tens_of_bytes(self, sparse_world):
        swarm = _swarm(sparse_world, size=20_000, block_size=DEFAULT_BLOCK_SIZE)
        per_peer = swarm.columns().nbytes / len(swarm)
        assert per_peer < 100  # the object directory costs ~1 kB/peer


class TestFidelity:
    def test_object_view_matches_columns(self, sparse_world):
        swarm = _swarm(sparse_world, size=600)
        cols = swarm.columns()
        peers = swarm.peers()
        assert len(peers) == len(cols) == 600
        for i in (0, 17, 599):
            p = peers[i]
            assert p.endpoint.ip == int(cols.ip[i])
            assert p.endpoint.asn == int(cols.asn[i])
            assert p.endpoint.country_code == str(cols.cc[i])
            assert p.endpoint.access.up_bps == float(cols.up_bps[i])
            assert p.endpoint.access.nat == bool(cols.nat[i])
            assert p.endpoint.initial_ttl == int(cols.initial_ttl[i])
            assert p.endpoint.subnet == int(cols.subnet[i])

    def test_unique_ips(self, sparse_world):
        cols = _swarm(sparse_world, size=5000).columns()
        assert len(np.unique(cols.ip)) == len(cols)

    def test_demographics_rules_hold(self, sparse_world):
        cols = _swarm(sparse_world, size=8000).columns()
        cn = np.mean(cols.cc == "CN")
        assert cn > 0.5  # CCTV-1 audience is China-dominated
        unix = np.mean(cols.initial_ttl == 64)
        assert 0 < unix < 0.15
        campus_asns = {asn for asn, _ in PROBE_AS_NUMBERS.values()}
        in_campus = np.isin(cols.asn, sorted(campus_asns))
        assert in_campus.any()
        assert set(np.unique(cols.cc[in_campus])) <= {"IT", "FR", "HU", "PL"}

    def test_probe_as_fraction_zero_means_no_campus(self, sparse_world):
        demo = cctv1_audience(probe_as_fraction=0.0)
        cols = _swarm(sparse_world, size=4000, demographics=demo).columns()
        campus_asns = {asn for asn, _ in PROBE_AS_NUMBERS.values()}
        assert not np.isin(cols.asn, sorted(campus_asns)).any()


class TestAliasTable:
    def test_rejects_bad_weights(self):
        for bad in ([], [-1.0, 2.0], [np.inf, 1.0], [0.0, 0.0]):
            with pytest.raises(ConfigurationError):
                AliasTable(np.array(bad, dtype=np.float64))

    def test_deterministic(self):
        table = AliasTable(np.array([1.0, 2.0, 3.0]))
        a = table.draw(np.random.default_rng(4), 100)
        b = table.draw(np.random.default_rng(4), 100)
        assert np.array_equal(a, b)

    def test_distribution_matches_weights(self):
        w = np.array([1.0, 3.0, 6.0])
        table = AliasTable(w)
        draws = table.draw(np.random.default_rng(1), 60_000)
        freq = np.bincount(draws, minlength=3) / len(draws)
        assert np.allclose(freq, w / w.sum(), atol=0.02)

    def test_uniform_weights_stay_uniform(self):
        table = AliasTable(np.ones(7))
        draws = table.draw(np.random.default_rng(2), 70_000)
        freq = np.bincount(draws, minlength=7) / len(draws)
        assert np.allclose(freq, 1 / 7, atol=0.02)

    def test_single_bucket_always_wins(self):
        # Degenerate n=1 table: every draw must return index 0 (the alias
        # construction has no partner bucket to split probability with).
        table = AliasTable(np.array([2.5]))
        draws = table.draw(np.random.default_rng(5), 1000)
        assert np.array_equal(draws, np.zeros(1000, dtype=draws.dtype))

    def test_zero_probability_entries_never_drawn(self):
        w = np.array([0.0, 5.0, 0.0, 1.0, 0.0])
        table = AliasTable(w)
        draws = table.draw(np.random.default_rng(6), 30_000)
        assert set(np.unique(draws).tolist()) <= {1, 3}
        freq = np.bincount(draws, minlength=5) / len(draws)
        assert np.allclose(freq, w / w.sum(), atol=0.02)

    def test_matches_generator_choice_frequencies(self):
        """Property: alias draws ≈ ``Generator.choice`` for random weights.

        Hypothesis explores the weight space (mixed magnitudes, zeros,
        short and long tables); both samplers target the same normalised
        distribution, so large-sample frequencies must agree within a
        tolerance far tighter than any miscomputed alias/prob pair could
        satisfy.
        """
        from hypothesis import given, settings, strategies as st

        @settings(max_examples=30, deadline=None)
        @given(
            weights=st.lists(
                st.floats(min_value=0.0, max_value=50.0, allow_nan=False),
                min_size=1,
                max_size=12,
            ).filter(lambda ws: sum(ws) > 0),
            seed=st.integers(min_value=0, max_value=2**31 - 1),
        )
        def check(weights, seed):
            w = np.array(weights, dtype=np.float64)
            p = w / w.sum()
            n = 40_000
            alias = AliasTable(w).draw(np.random.default_rng(seed), n)
            ref = np.random.default_rng(seed + 1).choice(len(w), size=n, p=p)
            f_alias = np.bincount(alias, minlength=len(w)) / n
            f_ref = np.bincount(ref, minlength=len(w)) / n
            assert np.allclose(f_alias, p, atol=0.03)
            assert np.allclose(f_alias, f_ref, atol=0.05)

        check()


class TestIndexRemap:
    """The compact first-contact index map behind lazy per-remote state."""

    def test_slots_assigned_densely_in_touch_order(self):
        remap = IndexRemap()
        assert remap.slot(70_000) is None
        assert remap.ensure(70_000) == 0
        assert remap.ensure(12) == 1
        assert remap.ensure(70_000) == 0  # idempotent
        assert remap.slot(12) == 1
        assert len(remap) == 2


class TestScoreRowCache:
    """On-demand score rows under a byte budget, LRU-evicted."""

    def test_builds_once_then_hits(self):
        built = []

        def build(k):
            built.append(k)
            return np.full(8, float(k))

        cache = ScoreRowCache(build, budget_bytes=1 << 20)
        a = cache.row(3)
        b = cache.row(3)
        assert a is b and built == [3]
        assert cache.hits == 1 and cache.misses == 1

    def test_evicts_least_recently_used_within_budget(self):
        row_bytes = np.zeros(8).nbytes
        cache = ScoreRowCache(
            lambda k: np.full(8, float(k)), budget_bytes=2 * row_bytes
        )
        cache.row(0)
        cache.row(1)
        cache.row(0)  # refresh 0 → 1 is now the LRU entry
        cache.row(2)  # over budget: evicts 1, keeps 0 and 2
        assert cache.evictions == 1
        assert cache.nbytes <= 2 * row_bytes
        cache.row(0)
        assert cache.misses == 3  # 0, 1, 2 — the refreshed 0 never rebuilt

    def test_single_row_kept_even_over_budget(self):
        cache = ScoreRowCache(lambda k: np.zeros(64), budget_bytes=1)
        row = cache.row(9)
        assert row.size == 64 and len(cache) == 1


class TestScaledSwarm:
    """The validating resize used by sparse paper-scale profiles."""

    def test_scaled_routes_sparse_profiles_through_validation(self):
        prof = get_profile("napa-scale")
        shrunk = prof.scaled(0.05)
        assert shrunk.swarm_size == 9000
        assert shrunk.tracker_initial == prof.tracker_initial  # saturates

    def test_discovery_reach_overflow_is_an_error(self):
        prof = get_profile("napa-scale")
        with pytest.raises(ConfigurationError, match="discovery reach"):
            prof.scaled_swarm(prof.tracker_initial - 1)

    def test_no_silent_floor(self):
        prof = get_profile("napa-scale")
        with pytest.raises(ConfigurationError):
            prof.scaled_swarm(0)
        with pytest.raises(ConfigurationError):
            prof.scaled(1e-9)  # rounds to zero peers: error, not a clamp

    def test_dense_profiles_keep_legacy_floors(self):
        prof = get_profile("pplive")
        tiny = prof.scaled(1e-9)
        assert tiny.swarm_size == 10  # the historical clamp, unchanged
