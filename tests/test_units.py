"""Unit-conversion helpers."""

import math

import pytest

from repro import units


class TestRateConversions:
    def test_kbps(self):
        assert units.kbps(384) == 384_000.0

    def test_mbps(self):
        assert units.mbps(10) == 10_000_000.0

    def test_to_kbps_roundtrip(self):
        assert units.to_kbps(units.kbps(123.5)) == pytest.approx(123.5)

    def test_to_mbps_roundtrip(self):
        assert units.to_mbps(units.mbps(2.75)) == pytest.approx(2.75)


class TestByteBitConversions:
    def test_bytes_to_bits(self):
        assert units.bytes_to_bits(1250) == 10_000

    def test_bits_to_bytes(self):
        assert units.bits_to_bytes(10_000) == 1250

    def test_roundtrip(self):
        assert units.bits_to_bytes(units.bytes_to_bits(977)) == 977


class TestTransmissionTime:
    def test_reference_packet_at_10mbps_takes_1ms(self):
        # The paper's BW threshold identity.
        assert units.transmission_time(1250, units.mbps(10)) == pytest.approx(1e-3)

    def test_chunk_at_dsl_uplink(self):
        # 16 kB at 384 kb/s = 1/3 s — one chunk interval, a DSL uplink can
        # serve exactly one stream copy.
        assert units.transmission_time(16_000, units.kbps(384)) == pytest.approx(1 / 3)

    def test_zero_rate_rejected(self):
        with pytest.raises(ValueError):
            units.transmission_time(100, 0)

    def test_negative_rate_rejected(self):
        with pytest.raises(ValueError):
            units.transmission_time(100, -5)


class TestRateFromBytes:
    def test_basic(self):
        assert units.rate_from_bytes(48_000, 1.0) == pytest.approx(units.kbps(384))

    def test_zero_duration_rejected(self):
        with pytest.raises(ValueError):
            units.rate_from_bytes(100, 0)


class TestFormatting:
    def test_fmt_rate_mbps(self):
        assert units.fmt_rate(3_400_000) == "3.40 Mb/s"

    def test_fmt_rate_kbps(self):
        assert units.fmt_rate(384_000) == "384 kb/s"

    def test_fmt_rate_bps(self):
        assert units.fmt_rate(500) == "500 b/s"

    def test_fmt_bytes_mb(self):
        assert units.fmt_bytes(2_500_000) == "2.50 MB"

    def test_fmt_bytes_kb(self):
        assert units.fmt_bytes(16_000) == "16.0 kB"

    def test_fmt_bytes_b(self):
        assert units.fmt_bytes(80) == "80 B"

    def test_fmt_never_raises_on_float_edge(self):
        assert isinstance(units.fmt_bytes(0), str)
        assert math.isfinite(float(units.fmt_rate(0).split()[0]))
