"""Headline integration tests.

Two kinds of end-to-end validation:

1. **Shape reproduction** — a full-scale campaign must satisfy every
   qualitative claim of the paper (the checks of
   :mod:`repro.report.compare`).  This is the repo's Table IV/Fig 2
   equivalent of "the experiment reproduces".
2. **Ground-truth recovery** — the framework, which never sees the
   simulator's selection weights, must (a) detect awareness that is there
   and (b) report none where there is none.  The original paper could not
   run this control; it is the strongest evidence the methodology works.
"""

from dataclasses import replace

import pytest

from repro import analyze_experiment
from repro.experiments.campaign import CampaignConfig, run_campaign
from repro.report.compare import check_campaign_shape
from repro.streaming import SelectionWeights, get_profile, simulate


@pytest.fixture(scope="module")
def campaign_full():
    """Full-scale swarms, 4-minute captures (the indices are stable)."""
    return run_campaign(CampaignConfig(duration_s=240.0, seed=42))


class TestPaperShape:
    def test_all_shape_checks_pass(self, campaign_full):
        checks = check_campaign_shape(campaign_full)
        failed = [c for c in checks if not c.passed]
        assert not failed, "\n".join(f"{c.name}: {c.detail}" for c in failed)


class TestGroundTruthRecovery:
    def test_oblivious_app_scores_no_as_preference(self):
        profile = get_profile("random")
        result = simulate(profile, duration_s=100.0, seed=31)
        scores = analyze_experiment(result)["AS"].download
        # No awareness ⇒ byte preference ≈ peer preference, both small.
        assert scores.B_prime < 4.0
        assert abs(scores.B_prime - scores.P_prime) < 2.5

    def test_as_biased_app_detected(self):
        base = get_profile("random")
        profile = replace(
            base,
            name="as-aware",
            partner_weights=SelectionWeights(bw=1.8, as_=1.2),
            provider_weights=SelectionWeights(bw=2.2, as_=2.4),
            discovery_as_bias=3.0,
        )
        result = simulate(profile, duration_s=100.0, seed=31)
        scores = analyze_experiment(result)["AS"].download
        # Discovery bias inflates the peer share too, so the byte/peer
        # ratio is moderate — but the absolute preference is unmistakable
        # against the oblivious baseline (< 4 %).
        assert scores.B_prime > 1.4 * scores.P_prime
        assert scores.B_prime > 10.0

    def test_bw_bias_detected_vs_absent(self):
        base = get_profile("random")
        result = simulate(base, duration_s=100.0, seed=13)
        blind = analyze_experiment(result)["BW"].download
        aware_profile = replace(
            base,
            name="bw-aware",
            partner_weights=SelectionWeights(bw=2.2),
            provider_weights=SelectionWeights(bw=2.6),
        )
        result2 = simulate(aware_profile, duration_s=100.0, seed=13)
        aware = analyze_experiment(result2)["BW"].download
        # The bw-aware app concentrates bytes on high-bw peers well beyond
        # the oblivious one.
        assert aware.B > blind.B + 5
