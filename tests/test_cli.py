"""Command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_simulate_defaults(self):
        args = build_parser().parse_args(["simulate"])
        assert args.app == "tvants"
        assert args.duration == 300.0

    def test_unknown_app_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["simulate", "--app", "bittorrent"])

    def test_campaign_apps(self):
        args = build_parser().parse_args(["campaign", "--apps", "tvants", "sopcast"])
        assert args.apps == ["tvants", "sopcast"]

    def test_campaign_resilience_flags(self):
        args = build_parser().parse_args(
            ["campaign", "--max-retries", "2", "--validate",
             "--checkpoint-dir", "ck", "--impair", "0.5"]
        )
        assert args.max_retries == 2
        assert args.validate
        assert args.checkpoint_dir == "ck"
        assert args.impair == 0.5

    def test_robustness_defaults(self):
        args = build_parser().parse_args(["robustness"])
        assert args.app == "tvants"
        assert args.severities == [0.0, 0.25, 0.5, 0.75, 1.0]

    def test_profile_flag(self):
        args = build_parser().parse_args(["campaign"])
        assert args.profile is None
        args = build_parser().parse_args(["campaign", "--profile"])
        assert args.profile == "auto"
        args = build_parser().parse_args(["simulate", "--profile", "x.pstats"])
        assert args.profile == "x.pstats"

    @pytest.mark.parametrize(
        "command", ["simulate", "campaign", "replicate", "robustness"]
    )
    def test_scheduler_flag(self, command):
        args = build_parser().parse_args([command])
        assert args.scheduler is None  # resolve at run time (env default)
        args = build_parser().parse_args([command, "--scheduler", "rarest"])
        assert args.scheduler == "rarest"


class TestSchedulerErrors:
    """Unknown policy names fail fast with the valid choices listed."""

    @pytest.mark.parametrize(
        "argv",
        [
            ["simulate", "--scheduler", "bittorrent"],
            ["campaign", "--scheduler", "bittorrent"],
            ["replicate", "--scheduler", "bittorrent"],
            ["robustness", "--scheduler", "bittorrent"],
        ],
    )
    def test_unknown_scheduler_exits_2_naming_choices(self, argv, capsys):
        assert main(argv) == 2
        err = capsys.readouterr().err
        assert "unknown chunk scheduler 'bittorrent'" in err
        for name in ("mesh-pull", "rarest", "edf", "push"):
            assert name in err

    def test_bad_env_scheduler_exits_2(self, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_SCHEDULER", "carrier-pigeon")
        assert main(["simulate", "--duration", "1"]) == 2
        assert "carrier-pigeon" in capsys.readouterr().err

    def test_flag_overrides_bad_env(self, monkeypatch, tmp_path, capsys):
        # An explicit --scheduler wins before the env default is even read.
        monkeypatch.setenv("REPRO_SCHEDULER", "carrier-pigeon")
        out = tmp_path / "t.npz"
        rc = main(
            ["simulate", "--scheduler", "mesh-pull", "--duration", "5",
             "--out", str(out)]
        )
        assert rc == 0 and out.exists()


class TestEndToEnd:
    def test_simulate_with_scheduler_records_it(self, tmp_path):
        from repro.trace.store import load_trace_bundle

        out = tmp_path / "r.npz"
        rc = main(
            ["simulate", "--app", "tvants", "--duration", "10", "--seed", "3",
             "--scheduler", "rarest", "--out", str(out)]
        )
        assert rc == 0
        assert load_trace_bundle(out).meta["scheduler"] == "rarest"

    def test_simulate_then_analyze(self, tmp_path, capsys):
        out = tmp_path / "t.npz"
        rc = main(
            ["simulate", "--app", "tvants", "--duration", "25", "--seed", "3",
             "--out", str(out)]
        )
        assert rc == 0
        assert out.exists()
        captured = capsys.readouterr().out
        assert "trace bundle written" in captured

        rc = main(["analyze", str(out)])
        assert rc == 0
        captured = capsys.readouterr().out
        assert "TABLE IV" in captured
        assert "self-induced bias" in captured

    def test_replicate_command(self, capsys):
        rc = main(
            ["replicate", "--duration", "20", "--scale", "0.3",
             "--seeds", "5", "6"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "replications" in out
        assert "pass rates" in out

    def test_localize_command(self, capsys):
        rc = main(["localize", "--duration", "20", "--scale", "0.3"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "LOCALIZATION" in out

    def test_single_app_campaign(self, tmp_path, monkeypatch, capsys):
        monkeypatch.chdir(tmp_path)  # default --manifest writes to cwd
        rc = main(
            ["campaign", "--apps", "tvants", "--duration", "20", "--scale", "0.5"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "TABLE I" in out
        assert "TABLE IV" in out
        assert "FIGURE 2" in out
        # Shape checks need all three apps; skipped for one.
        assert "shape checks" not in out
        assert (tmp_path / "run_manifest.json").exists()

    def test_campaign_manifest_and_stats(self, tmp_path, capsys):
        manifest = tmp_path / "m.json"
        rc = main(
            ["campaign", "--apps", "tvants", "--duration", "20", "--scale", "0.5",
             "--manifest", str(manifest)]
        )
        assert rc == 0
        assert manifest.exists()
        capsys.readouterr()

        rc = main(["stats", str(manifest)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "SHARDS" in out
        assert "STAGE TIMERS" in out
        assert "tvants" in out

    def test_stats_diff(self, tmp_path, capsys):
        from repro.obs.manifest import RunManifest, config_digest, write_manifest

        def make(seed):
            cfg = {"seed": seed, "apps": ["tvants"]}
            return RunManifest(config=cfg, config_hash=config_digest(cfg))

        a = write_manifest(tmp_path / "a.json", make(1))
        b = write_manifest(tmp_path / "b.json", make(1))
        c = write_manifest(tmp_path / "c.json", make(2))

        assert main(["stats", "--diff", str(a), str(b)]) == 0
        assert "configs match" in capsys.readouterr().out

        # Different configurations: report the changed keys, exit nonzero.
        assert main(["stats", "--diff", str(a), str(c)]) == 1
        out = capsys.readouterr().out
        assert "CONFIG MISMATCH" in out
        assert "seed" in out

    def test_stats_diff_needs_two_manifests(self, tmp_path, capsys):
        from repro.obs.manifest import RunManifest, write_manifest

        a = write_manifest(tmp_path / "a.json", RunManifest())
        assert main(["stats", "--diff", str(a)]) == 2

    def test_campaign_profile_dump_recorded_in_manifest(self, tmp_path, capsys):
        import json
        import pstats

        manifest = tmp_path / "m.json"
        rc = main(
            ["campaign", "--apps", "tvants", "--duration", "20", "--scale", "0.5",
             "--manifest", str(manifest), "--profile"]
        )
        assert rc == 0
        profile_path = tmp_path / "m.pstats"
        assert profile_path.exists()
        doc = json.loads(manifest.read_text())
        assert doc["artifacts"]["profile"] == str(profile_path)
        # The dump is a loadable pstats file with real samples.
        stats = pstats.Stats(str(profile_path))
        assert stats.total_calls > 0

    def test_simulate_profile_explicit_path(self, tmp_path, capsys):
        out = tmp_path / "t.npz"
        prof = tmp_path / "sim.pstats"
        rc = main(
            ["simulate", "--app", "tvants", "--duration", "20", "--seed", "3",
             "--out", str(out), "--profile", str(prof)]
        )
        assert rc == 0
        assert prof.exists()

    def test_campaign_no_manifest(self, tmp_path, monkeypatch, capsys):
        monkeypatch.chdir(tmp_path)
        rc = main(
            ["campaign", "--apps", "tvants", "--duration", "20", "--scale", "0.5",
             "--no-manifest"]
        )
        assert rc == 0
        assert not (tmp_path / "run_manifest.json").exists()

    def test_robustness_command(self, capsys):
        rc = main(
            ["robustness", "--duration", "20", "--scale", "0.4",
             "--severities", "0.0", "1.0"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "ROBUSTNESS" in out
        assert "max drift" in out


class TestErrorExit:
    def test_repro_error_exits_2_with_message(self, capsys):
        rc = main(["analyze", "no-such-trace.npz"])
        assert rc == 2
        err = capsys.readouterr().err
        assert err.startswith("repro-p2ptv: error:")
        assert "\n" == err[err.index("\n") :]  # exactly one line

    def test_corrupt_trace_exits_2(self, tmp_path, capsys):
        bad = tmp_path / "bad.npz"
        bad.write_bytes(b"not an archive")
        rc = main(["analyze", str(bad)])
        assert rc == 2
        assert "error" in capsys.readouterr().err
