"""Command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_simulate_defaults(self):
        args = build_parser().parse_args(["simulate"])
        assert args.app == "tvants"
        assert args.duration == 300.0

    def test_unknown_app_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["simulate", "--app", "bittorrent"])

    def test_campaign_apps(self):
        args = build_parser().parse_args(["campaign", "--apps", "tvants", "sopcast"])
        assert args.apps == ["tvants", "sopcast"]


class TestEndToEnd:
    def test_simulate_then_analyze(self, tmp_path, capsys):
        out = tmp_path / "t.npz"
        rc = main(
            ["simulate", "--app", "tvants", "--duration", "25", "--seed", "3",
             "--out", str(out)]
        )
        assert rc == 0
        assert out.exists()
        captured = capsys.readouterr().out
        assert "trace bundle written" in captured

        rc = main(["analyze", str(out)])
        assert rc == 0
        captured = capsys.readouterr().out
        assert "TABLE IV" in captured
        assert "self-induced bias" in captured

    def test_replicate_command(self, capsys):
        rc = main(
            ["replicate", "--duration", "20", "--scale", "0.3",
             "--seeds", "5", "6"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "replications" in out
        assert "pass rates" in out

    def test_localize_command(self, capsys):
        rc = main(["localize", "--duration", "20", "--scale", "0.3"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "LOCALIZATION" in out

    def test_single_app_campaign(self, capsys):
        rc = main(
            ["campaign", "--apps", "tvants", "--duration", "20", "--scale", "0.5"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "TABLE I" in out
        assert "TABLE IV" in out
        assert "FIGURE 2" in out
        # Shape checks need all three apps; skipped for one.
        assert "shape checks" not in out
