"""Shared fixtures.

Expensive artifacts (worlds, simulations, campaigns) are session-scoped:
they are deterministic, read-only for tests, and building them once keeps
the suite fast.  Tests that need mutation build their own instances.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.framework import AwarenessAnalyzer
from repro.experiments.campaign import Campaign, CampaignConfig, run_campaign
from repro.heuristics.registry import IpRegistry
from repro.streaming.engine import EngineConfig, SimulationResult, simulate
from repro.streaming.profiles import get_profile
from repro.topology.testbed import Testbed, build_napa_wine_testbed
from repro.topology.world import World
from repro.trace.flows import FlowTable, build_flow_table


@pytest.fixture(scope="session")
def world() -> World:
    """A default synthetic Internet (no testbed deployed)."""
    return World()


@pytest.fixture(scope="session")
def deployed() -> tuple[World, Testbed]:
    """A world with the Table I testbed deployed on it."""
    w = World()
    tb = build_napa_wine_testbed(w)
    return w, tb


@pytest.fixture(scope="session")
def testbed(deployed) -> Testbed:
    return deployed[1]


@pytest.fixture(scope="session")
def sim_small() -> SimulationResult:
    """A short TVAnts run — the workhorse for trace/analysis tests."""
    return simulate(
        get_profile("tvants"),
        engine_config=EngineConfig(duration_s=60.0, seed=5),
    )


@pytest.fixture(scope="session")
def flows_small(sim_small) -> FlowTable:
    return build_flow_table(
        sim_small.transfers, sim_small.signaling, sim_small.hosts, sim_small.world.paths
    )


@pytest.fixture(scope="session")
def registry_small(sim_small) -> IpRegistry:
    return IpRegistry.from_world(sim_small.world)


@pytest.fixture(scope="session")
def report_small(flows_small, registry_small):
    return AwarenessAnalyzer(registry_small).analyze(flows_small)


@pytest.fixture(scope="session")
def campaign_small() -> Campaign:
    """A scaled-down three-app campaign for table/figure/compare tests."""
    return run_campaign(
        CampaignConfig(duration_s=90.0, seed=42, scale=0.5)
    )


@pytest.fixture()
def rng() -> np.random.Generator:
    return np.random.default_rng(1234)
