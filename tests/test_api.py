"""Top-level package API, config, and error hierarchy."""

import numpy as np
import pytest

import repro
from repro import errors
from repro.config import RngBundle


class TestPublicApi:
    def test_all_exports_resolvable(self):
        for name in repro.__all__:
            assert getattr(repro, name, None) is not None, name

    def test_version(self):
        assert repro.__version__.count(".") == 2

    def test_run_and_analyze_convenience(self, sim_small, report_small):
        # The conftest fixtures exercise simulate/build/analyze; here we
        # check the convenience wrappers agree with the fixture pipeline.
        table = repro.flow_table_of(sim_small)
        report = repro.analyze_experiment(sim_small)
        assert len(table) > 0
        assert report["BW"].download.B == pytest.approx(
            report_small["BW"].download.B
        )

    def test_subpackage_exports(self):
        import repro.active
        import repro.core
        import repro.experiments
        import repro.friendliness
        import repro.heuristics
        import repro.population
        import repro.report
        import repro.streaming
        import repro.swarm
        import repro.topology
        import repro.trace

        for module in (
            repro.core, repro.experiments, repro.friendliness,
            repro.heuristics, repro.population, repro.streaming,
            repro.swarm, repro.topology, repro.trace, repro.active,
        ):
            for name in module.__all__:
                assert getattr(module, name, None) is not None, (module, name)


class TestRngBundle:
    def test_named_streams(self):
        rngs = RngBundle(7)
        assert "engine" in rngs.streams
        assert isinstance(rngs["engine"], np.random.Generator)

    def test_unknown_stream(self):
        with pytest.raises(KeyError):
            RngBundle(7)["quantum"]

    def test_streams_independent(self):
        rngs = RngBundle(7)
        a = rngs["engine"].random(5)
        b = rngs["selection"].random(5)
        assert not np.allclose(a, b)

    def test_reproducible(self):
        a = RngBundle(7)["engine"].random(5)
        b = RngBundle(7)["engine"].random(5)
        assert np.allclose(a, b)

    def test_seed_changes_streams(self):
        a = RngBundle(1)["engine"].random(5)
        b = RngBundle(2)["engine"].random(5)
        assert not np.allclose(a, b)

    def test_position_independence(self):
        # A stream's values don't depend on whether other streams drew.
        bundle1 = RngBundle(9)
        bundle1["world"].random(100)
        v1 = bundle1["trace"].random(3)
        bundle2 = RngBundle(9)
        v2 = bundle2["trace"].random(3)
        assert np.allclose(v1, v2)


class TestErrorHierarchy:
    @pytest.mark.parametrize(
        "exc",
        [
            errors.ConfigurationError,
            errors.TopologyError,
            errors.AddressError,
            errors.AllocationError,
            errors.SimulationError,
            errors.TraceError,
            errors.AnalysisError,
            errors.RegistryError,
        ],
    )
    def test_all_derive_from_repro_error(self, exc):
        assert issubclass(exc, errors.ReproError)

    def test_address_is_topology(self):
        assert issubclass(errors.AddressError, errors.TopologyError)

    def test_registry_is_analysis(self):
        assert issubclass(errors.RegistryError, errors.AnalysisError)

    def test_catch_all(self):
        with pytest.raises(errors.ReproError):
            raise errors.TraceError("boom")
