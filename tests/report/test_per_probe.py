"""Per-probe breakdown view."""

import numpy as np
import pytest

from repro.core.partitions import ASPartition, BWPartition
from repro.core.views import build_views
from repro.report.per_probe import (
    per_probe_breakdown,
    render_probe_breakdown,
)


@pytest.fixture(scope="module")
def breakdown(flows_small, sim_small):
    views = build_views(flows_small)
    return per_probe_breakdown(views.download, BWPartition(), sim_small.testbed)


class TestBreakdown:
    def test_one_row_per_probe(self, breakdown, sim_small):
        assert len(breakdown.rows) == len(sim_small.testbed)

    def test_rows_labelled(self, breakdown):
        row = breakdown.row("PoliTO-1")
        assert row.site == "PoliTO"
        assert row.access == "high-bw"

    def test_unknown_label(self, breakdown):
        with pytest.raises(KeyError):
            breakdown.row("MIT-1")

    def test_sum_matches_aggregate(self, breakdown, report_small):
        agg = report_small["BW"].download.all_peers
        total_pref = sum(r.counts.peers_preferred for r in breakdown.rows)
        total = sum(r.counts.total_peers for r in breakdown.rows)
        assert total_pref == agg.peers_preferred
        assert total == agg.total_peers

    def test_every_probe_has_contributors(self, breakdown):
        assert all(r.counts.total_peers > 0 for r in breakdown.rows)

    def test_spread(self, breakdown):
        mean, std = breakdown.spread("B")
        assert 80 < mean <= 100
        assert std >= 0

    def test_heterogeneity_visible(self, flows_small, sim_small, registry_small):
        # AS preference concentrates on campus probes; home probes (own
        # tiny ASes) have essentially none.
        views = build_views(flows_small)
        bd = per_probe_breakdown(
            views.download, ASPartition(registry_small), sim_small.testbed
        )
        campus = [r.B for r in bd.rows if r.access == "high-bw" and not np.isnan(r.B)]
        home = [r.B for r in bd.rows if r.access != "high-bw" and not np.isnan(r.B)]
        assert np.mean(campus) > np.mean(home)


class TestRender:
    def test_render(self, breakdown):
        out = render_probe_breakdown(breakdown)
        assert "PER-PROBE BW" in out
        assert "PoliTO-1" in out
        assert "±" in out

    def test_limit(self, breakdown):
        out = render_probe_breakdown(breakdown, limit=3)
        assert "WUT-9" not in out
