"""Shape-check machinery on the scaled-down campaign.

The full-scale shape validation lives in tests/test_integration_shape.py;
here we exercise the checker mechanics and the claims that remain robust
at small scale.
"""

from repro.report.compare import ShapeCheck, check_campaign_shape, render_checks


class TestChecker:
    def test_produces_all_checks(self, campaign_small):
        checks = check_campaign_shape(campaign_small)
        assert len(checks) == 25
        names = [c.name for c in checks]
        assert len(set(names)) == len(names)

    def test_each_check_has_detail(self, campaign_small):
        for c in check_campaign_shape(campaign_small):
            assert isinstance(c, ShapeCheck)
            assert c.detail

    def test_core_claims_hold_even_at_small_scale(self, campaign_small):
        checks = {c.name: c for c in check_campaign_shape(campaign_small)}
        robust = [
            "T2: swarm reach ordering PPLive ≫ SopCast ≫ TVAnts",
            "T4/BW: strong byte preference for high-bandwidth peers (all apps)",
            "T4/NET: no non-probe same-subnet peers exist (P' empty)",
            "T3: self-bias magnitude TVAnts > SopCast > PPLive (bytes)",
        ]
        for name in robust:
            assert checks[name].passed, checks[name].detail

    def test_majority_pass_at_small_scale(self, campaign_small):
        checks = check_campaign_shape(campaign_small)
        assert sum(c.passed for c in checks) >= len(checks) * 0.7


class TestRender:
    def test_render(self, campaign_small):
        out = render_checks(check_campaign_shape(campaign_small))
        assert "shape checks passed" in out
        assert "[PASS]" in out
