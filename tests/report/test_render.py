"""Text renderers."""

from repro.experiments.figure1 import build_figure1
from repro.experiments.figure2 import build_figure2
from repro.experiments.table1 import build_table1
from repro.experiments.table2 import build_table2
from repro.experiments.table3 import build_table3
from repro.experiments.table4 import build_table4
from repro.report.figures import render_figure1, render_figure2, render_matrix
from repro.report.tables import (
    render_table,
    render_table1,
    render_table2,
    render_table3,
    render_table4,
)


class TestGenericTable:
    def test_alignment(self):
        out = render_table(["a", "bb"], [["1", "2"], ["333", "4"]])
        lines = out.splitlines()
        assert len({len(l) for l in lines}) == 1  # rectangular

    def test_title(self):
        out = render_table(["x"], [["1"]], title="TITLE")
        assert out.startswith("TITLE")


class TestTableRenderers:
    def test_table1(self, testbed):
        out = render_table1(build_table1(testbed))
        assert "TABLE I" in out
        assert "PoliTO" in out and "high-bw" in out and "DSL 6/0.512" in out
        assert "46 hosts" in out

    def test_table2(self, campaign_small):
        out = render_table2(build_table2(campaign_small))
        assert "TABLE II" in out
        for app in ("pplive", "sopcast", "tvants"):
            assert app in out

    def test_table3(self, campaign_small):
        out = render_table3(build_table3(campaign_small))
        assert "TABLE III" in out

    def test_table4_dashes_for_unmeasurable(self, campaign_small):
        out = render_table4(build_table4(campaign_small))
        assert "TABLE IV" in out
        # BW upload cells are '-'.
        bw_lines = [l for l in out.splitlines() if l.lstrip().startswith("BW")]
        assert bw_lines and all(l.rstrip().endswith("-") for l in bw_lines)


class TestFigureRenderers:
    def test_figure1(self, campaign_small):
        out = render_figure1(build_figure1(campaign_small))
        assert "FIGURE 1" in out
        assert "CN:" in out and "RX" in out and "TX" in out

    def test_figure2(self, campaign_small):
        out = render_figure2(build_figure2(campaign_small))
        assert "FIGURE 2" in out
        assert "R(intra/inter)" in out

    def test_generic_matrix(self):
        import numpy as np

        out = render_matrix(np.eye(2), ["A", "B"], title="M")
        assert out.startswith("M")
        assert "A" in out and "B" in out
