"""Sanity of the transcribed paper numbers (internal consistency)."""

import math

from repro.report.paper import (
    PAPER_FIG2_RATIOS,
    PAPER_TABLE2,
    PAPER_TABLE3,
    PAPER_TABLE4,
)


class TestTable2Transcription:
    def test_apps(self):
        assert set(PAPER_TABLE2) == {"pplive", "sopcast", "tvants"}

    def test_reach_ordering_as_published(self):
        assert (
            PAPER_TABLE2["pplive"]["all_peers_mean"]
            > PAPER_TABLE2["sopcast"]["all_peers_mean"]
            > PAPER_TABLE2["tvants"]["all_peers_mean"]
        )

    def test_max_geq_mean(self):
        for row in PAPER_TABLE2.values():
            assert row["rx_kbps_max"] >= row["rx_kbps_mean"]
            assert row["tx_kbps_max"] >= row["tx_kbps_mean"]

    def test_pplive_upload_heavy(self):
        assert PAPER_TABLE2["pplive"]["tx_kbps_mean"] > 3000


class TestTable3Transcription:
    def test_tvants_highest_self_bias(self):
        assert PAPER_TABLE3["tvants"]["contrib_byte_pct"] > 50

    def test_percentages_bounded(self):
        for row in PAPER_TABLE3.values():
            for v in row.values():
                assert 0 <= v <= 100


class TestTable4Transcription:
    def test_full_grid(self):
        metrics = {k[0] for k in PAPER_TABLE4}
        apps = {k[1] for k in PAPER_TABLE4}
        dirs = {k[2] for k in PAPER_TABLE4}
        assert metrics == {"BW", "AS", "CC", "NET", "HOP"}
        assert apps == {"pplive", "sopcast", "tvants"}
        assert dirs == {"download", "upload"}
        assert len(PAPER_TABLE4) == 30

    def test_bw_upload_unmeasured(self):
        for app in ("pplive", "sopcast", "tvants"):
            cell = PAPER_TABLE4[("BW", app, "upload")]
            assert all(math.isnan(v) for v in cell.values())

    def test_bw_download_values(self):
        for app in ("pplive", "sopcast", "tvants"):
            cell = PAPER_TABLE4[("BW", app, "download")]
            assert cell["B"] > 95 and cell["P"] > 83

    def test_pplive_as_ratio_about_ten(self):
        cell = PAPER_TABLE4[("AS", "pplive", "download")]
        assert 8 < cell["B_prime"] / cell["P_prime"] < 12

    def test_sopcast_as_no_preference(self):
        cell = PAPER_TABLE4[("AS", "sopcast", "download")]
        assert abs(cell["B_prime"] - cell["P_prime"]) < 0.5

    def test_net_prime_unmeasured(self):
        for app in ("pplive", "sopcast", "tvants"):
            cell = PAPER_TABLE4[("NET", app, "download")]
            assert math.isnan(cell["B_prime"])
            assert not math.isnan(cell["B"])

    def test_values_bounded(self):
        for cell in PAPER_TABLE4.values():
            for v in cell.values():
                assert math.isnan(v) or 0 <= v <= 100


class TestFig2Transcription:
    def test_ratio_ordering(self):
        assert (
            PAPER_FIG2_RATIOS["tvants"]
            > PAPER_FIG2_RATIOS["pplive"]
            > PAPER_FIG2_RATIOS["sopcast"]
        )

    def test_tvants_nearly_two(self):
        assert PAPER_FIG2_RATIOS["tvants"] == 1.93
