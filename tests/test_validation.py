"""Result validation and failure injection."""

import copy

import numpy as np

from repro.validation import Violation, validate_result


def _corrupt(result):
    """A shallow-copied result whose arrays are private copies."""
    out = copy.copy(result)
    out.transfers = result.transfers.copy()
    out.signaling = result.signaling.copy()
    return out


class TestCleanResult:
    def test_no_violations(self, sim_small):
        assert validate_result(sim_small) == []


class TestFailureInjection:
    def test_unsorted_log_detected(self, sim_small):
        bad = _corrupt(sim_small)
        bad.transfers["ts"][0] = 1e9
        rules = {v.rule for v in validate_result(bad)}
        assert "time-order" in rules

    def test_self_traffic_detected(self, sim_small):
        bad = _corrupt(sim_small)
        bad.transfers["dst"][5] = bad.transfers["src"][5]
        rules = {v.rule for v in validate_result(bad)}
        assert "self-traffic" in rules

    def test_unknown_kind_detected(self, sim_small):
        bad = _corrupt(sim_small)
        bad.transfers["kind"][0] = 99
        rules = {v.rule for v in validate_result(bad)}
        assert "kinds" in rules

    def test_unknown_address_detected(self, sim_small):
        bad = _corrupt(sim_small)
        bad.transfers["src"][0] = 1  # 0.0.0.1 is never allocated
        rules = {v.rule for v in validate_result(bad)}
        assert "addresses" in rules

    def test_probe_invisible_traffic_detected(self, sim_small):
        bad = _corrupt(sim_small)
        remotes = bad.hosts.rows[~bad.hosts.rows["is_probe"]]["ip"]
        bad.transfers["src"][10] = remotes[0]
        bad.transfers["dst"][10] = remotes[1]
        rules = {v.rule for v in validate_result(bad)}
        assert "capture" in rules

    def test_capacity_violation_detected(self, sim_small):
        from repro.trace.records import PacketKind

        bad = _corrupt(sim_small)
        video = bad.transfers["kind"] == int(PacketKind.VIDEO)
        # Inflate one slow sender's bytes absurdly.
        lows = bad.hosts.rows[
            (~bad.hosts.rows["highbw"]) & (~bad.hosts.rows["is_probe"])
        ]["ip"]
        sender_mask = video & np.isin(bad.transfers["src"], lows)
        if sender_mask.any():
            bad.transfers["bytes"][np.flatnonzero(sender_mask)[0]] = 2**31
            rules = {v.rule for v in validate_result(bad)}
            assert "capacity" in rules

    def test_bad_signaling_detected(self, sim_small):
        bad = _corrupt(sim_small)
        if len(bad.signaling):
            bad.signaling["stop"][0] = bad.signaling["start"][0]
            rules = {v.rule for v in validate_result(bad)}
            assert "signaling" in rules

    def test_violation_formatting(self):
        v = Violation(rule="x", detail="boom")
        assert "x" in str(v) and "boom" in str(v)
