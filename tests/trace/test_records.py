"""Trace record dtypes."""

import numpy as np

from repro.trace.records import (
    FLOW_DTYPE,
    PACKET_DTYPE,
    SIGNALING_DTYPE,
    TRANSFER_DTYPE,
    PacketKind,
    empty_flows,
    empty_packets,
    empty_transfers,
)


class TestDtypes:
    def test_transfer_fields(self):
        assert set(TRANSFER_DTYPE.names) == {
            "ts", "src", "dst", "bytes", "kind", "bottleneck",
        }

    def test_packet_fields(self):
        assert set(PACKET_DTYPE.names) == {"ts", "src", "dst", "size", "ttl", "kind"}

    def test_flow_fields_cover_analysis_inputs(self):
        needed = {"src", "dst", "bytes", "pkts", "min_ipg", "ttl",
                  "video_bytes", "video_pkts", "first_ts", "last_ts"}
        assert needed <= set(FLOW_DTYPE.names)

    def test_signaling_fields(self):
        assert set(SIGNALING_DTYPE.names) == {
            "src", "dst", "start", "stop", "interval", "bytes",
        }

    def test_addresses_are_u32(self):
        for dtype in (TRANSFER_DTYPE, PACKET_DTYPE, FLOW_DTYPE, SIGNALING_DTYPE):
            assert dtype["src"] == np.uint32
            assert dtype["dst"] == np.uint32


class TestKinds:
    def test_distinct_codes(self):
        codes = {int(k) for k in PacketKind}
        assert len(codes) == len(PacketKind)

    def test_fits_u8(self):
        assert max(int(k) for k in PacketKind) < 256


class TestEmptyFactories:
    def test_empty_arrays(self):
        assert len(empty_transfers()) == 0
        assert len(empty_packets()) == 0
        assert len(empty_flows()) == 0
        assert empty_transfers().dtype == TRANSFER_DTYPE
