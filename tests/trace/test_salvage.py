"""Degraded-trace recovery: salvaging truncated pcap files and bundles."""

import numpy as np
import pytest

from repro.errors import TraceError, TraceWarning
from repro.trace.packets import PacketSynthesizer
from repro.trace.pcap import read_pcap, write_pcap
from repro.trace.records import PACKET_DTYPE
from repro.trace.store import TraceBundle, load_trace_bundle, save_trace_bundle


@pytest.fixture(scope="module")
def packets(sim_small):
    probe = int(sim_small.probe_ips[0])
    mask = (sim_small.transfers["src"] == probe) | (
        sim_small.transfers["dst"] == probe
    )
    synth = PacketSynthesizer(sim_small.hosts, sim_small.world.paths)
    return synth.expand(sim_small.transfers[mask][:200])


@pytest.fixture(scope="module")
def bundle(sim_small):
    return TraceBundle.from_result(sim_small)


class TestPcapSalvage:
    def test_strict_still_raises(self, packets, tmp_path):
        path = write_pcap(tmp_path / "t.pcap", packets)
        cut = tmp_path / "cut.pcap"
        cut.write_bytes(path.read_bytes()[:-25])
        with pytest.raises(TraceError):
            read_pcap(cut)

    def test_salvage_recovers_intact_prefix(self, packets, tmp_path):
        path = write_pcap(tmp_path / "t.pcap", packets)
        cut = tmp_path / "cut.pcap"
        cut.write_bytes(path.read_bytes()[:-25])
        with pytest.warns(TraceWarning):
            back = read_pcap(cut, strict=False)
        assert 0 < len(back) < len(packets)
        full = read_pcap(path)
        assert np.array_equal(back, full[: len(back)])

    def test_salvage_of_intact_file_is_silent(self, packets, tmp_path):
        path = write_pcap(tmp_path / "t.pcap", packets)
        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("error")
            back = read_pcap(path, strict=False)
        assert len(back) == len(packets)

    def test_global_header_damage_always_raises(self, tmp_path):
        bad = tmp_path / "bad.pcap"
        bad.write_bytes(b"\x00" * 24)
        with pytest.raises(TraceError):
            read_pcap(bad, strict=False)

    def test_write_unknown_kind_raises_descriptive(self, tmp_path):
        packets = np.zeros(3, dtype=PACKET_DTYPE)
        packets["kind"] = 250  # not a known traffic kind
        with pytest.raises(TraceError, match="kind"):
            write_pcap(tmp_path / "x.pcap", packets)
        assert not (tmp_path / "x.pcap").exists()  # nothing half-written


class TestBundleSalvage:
    def test_strict_still_raises(self, bundle, tmp_path):
        path = save_trace_bundle(tmp_path / "b.npz", bundle)
        cut = tmp_path / "cut.npz"
        data = path.read_bytes()
        cut.write_bytes(data[: int(len(data) * 0.6)])
        with pytest.raises(TraceError):
            load_trace_bundle(cut)

    def test_salvage_recovers_row_prefix(self, bundle, tmp_path):
        path = save_trace_bundle(tmp_path / "b.npz", bundle)
        cut = tmp_path / "cut.npz"
        data = path.read_bytes()
        cut.write_bytes(data[: int(len(data) * 0.6)])
        with pytest.warns(TraceWarning):
            back = load_trace_bundle(cut, strict=False)
        assert 0 < len(back.transfers) < len(bundle.transfers)
        assert np.array_equal(
            back.transfers, bundle.transfers[: len(back.transfers)]
        )

    def test_salvage_of_intact_bundle_is_silent(self, bundle, tmp_path):
        path = save_trace_bundle(tmp_path / "b.npz", bundle)
        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("error")
            back = load_trace_bundle(path, strict=False)
        assert np.array_equal(back.transfers, bundle.transfers)
        assert back.meta["profile"] == bundle.meta["profile"]

    def test_missing_file_raises_even_lenient(self, tmp_path):
        with pytest.raises(TraceError):
            load_trace_bundle(tmp_path / "absent.npz", strict=False)

    def test_garbage_salvages_to_empty(self, tmp_path):
        junk = tmp_path / "junk.npz"
        junk.write_bytes(b"this is not a zip archive at all")
        with pytest.warns(TraceWarning):
            back = load_trace_bundle(junk, strict=False)
        assert len(back.transfers) == 0
        assert len(back.hosts.rows) == 0
