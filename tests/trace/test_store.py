"""Trace bundle persistence."""

import numpy as np
import pytest

from repro.errors import TraceError
from repro.trace.flows import build_flow_table
from repro.trace.store import (
    TraceBundle,
    load_trace_bundle,
    rebuild_world,
    save_trace_bundle,
)


@pytest.fixture(scope="module")
def bundle(sim_small):
    return TraceBundle.from_result(sim_small)


class TestRoundTrip:
    def test_save_load(self, bundle, tmp_path):
        path = save_trace_bundle(tmp_path / "t.npz", bundle)
        loaded = load_trace_bundle(path)
        assert np.array_equal(loaded.transfers, bundle.transfers)
        assert np.array_equal(loaded.signaling, bundle.signaling)
        assert np.array_equal(loaded.hosts.rows, bundle.hosts.rows)
        assert loaded.meta == bundle.meta

    def test_suffix_appended(self, bundle, tmp_path):
        path = save_trace_bundle(tmp_path / "trace", bundle)
        assert path.suffix == ".npz"

    def test_meta_contents(self, bundle, sim_small):
        assert bundle.meta["profile"] == "tvants"
        assert bundle.meta["duration_s"] == sim_small.config.duration_s
        assert "world_seed" in bundle.meta

    def test_bad_file_rejected(self, tmp_path):
        bad = tmp_path / "bad.npz"
        np.savez(bad, foo=np.zeros(3))
        with pytest.raises(TraceError):
            load_trace_bundle(bad)

    def test_wrong_dtypes_rejected(self, bundle):
        with pytest.raises(TraceError):
            TraceBundle(
                transfers=np.zeros(2, dtype=np.float64),
                signaling=bundle.signaling,
                hosts=bundle.hosts,
                meta={},
            )


class TestRebuildWorld:
    def test_analysis_identical_after_roundtrip(self, bundle, sim_small, tmp_path):
        path = save_trace_bundle(tmp_path / "t.npz", bundle)
        loaded = load_trace_bundle(path)
        world = rebuild_world(loaded)
        flows_rebuilt = build_flow_table(
            loaded.transfers, loaded.signaling, loaded.hosts, world.paths
        )
        flows_orig = build_flow_table(
            sim_small.transfers,
            sim_small.signaling,
            sim_small.hosts,
            sim_small.world.paths,
        )
        assert np.array_equal(flows_rebuilt.flows, flows_orig.flows)

    def test_missing_seed_raises(self, bundle):
        stripped = TraceBundle(
            transfers=bundle.transfers,
            signaling=bundle.signaling,
            hosts=bundle.hosts,
            meta={k: v for k, v in bundle.meta.items() if k != "world_seed"},
        )
        with pytest.raises(TraceError):
            rebuild_world(stripped)
