"""Host attribute table."""

import numpy as np
import pytest

from repro.errors import TraceError
from repro.trace.hosts import HOST_DTYPE, HostTable


def make_table(n=5):
    rows = np.zeros(n, dtype=HOST_DTYPE)
    rows["ip"] = np.arange(100, 100 + n, dtype=np.uint32)[::-1]  # unsorted
    rows["asn"] = np.arange(n) + 1
    rows["cc"] = ["IT", "FR", "CN", "CN", "HU"][:n]
    rows["subnet"] = rows["ip"] & np.uint32(0xFFFFFF00)
    rows["up_bps"] = 1e6 * (np.arange(n) + 1)
    rows["down_bps"] = 1e7
    rows["is_probe"] = [True, False, False, True, False][:n]
    rows["highbw"] = rows["up_bps"] > 2e6
    rows["initial_ttl"] = 128
    rows["access_depth"] = 2
    return HostTable(rows)


class TestConstruction:
    def test_sorted_by_ip(self):
        table = make_table()
        assert np.all(np.diff(table.rows["ip"].astype(np.int64)) > 0)

    def test_duplicate_ips_rejected(self):
        rows = np.zeros(2, dtype=HOST_DTYPE)
        rows["ip"] = [5, 5]
        rows["initial_ttl"] = 128
        with pytest.raises(TraceError):
            HostTable(rows)

    def test_wrong_dtype_rejected(self):
        with pytest.raises(TraceError):
            HostTable(np.zeros(3, dtype=np.float64))

    def test_from_columns(self):
        t = HostTable.from_columns(
            ip=np.array([1, 2], dtype=np.uint32),
            asn=np.array([10, 11]),
            cc=np.array(["IT", "FR"]),
            subnet=np.array([0, 0], dtype=np.uint32),
            up_bps=np.array([1e6, 1e8]),
            down_bps=np.array([1e7, 1e8]),
            is_probe=np.array([False, True]),
            highbw=np.array([False, True]),
            initial_ttl=np.array([128, 64]),
            access_depth=np.array([2, 1]),
        )
        assert len(t) == 2


class TestLookup:
    def test_gather(self):
        table = make_table()
        asns = table.gather(np.array([100, 104], dtype=np.uint32), "asn")
        # ip 100 was built with asn 5 (reversed order), ip 104 with asn 1.
        assert asns.tolist() == [5, 1]

    def test_row_for(self):
        table = make_table()
        row = table.row_for(102)
        assert int(row["ip"]) == 102

    def test_unknown_address_raises(self):
        table = make_table()
        with pytest.raises(TraceError):
            table.gather(np.array([999], dtype=np.uint32), "asn")

    def test_contains(self):
        table = make_table()
        assert 100 in table
        assert 99 not in table

    def test_probe_ips(self):
        table = make_table()
        probes = set(table.probe_ips.tolist())
        # Flags were assigned against the reversed (pre-sort) ip order:
        # ips [104..100] got is_probe [T, F, F, T, F] → probes are 104, 101.
        assert probes == {104, 101}


class TestPublicView:
    def test_capacities_hidden(self):
        pub = make_table().public_view()
        assert np.all(pub.rows["up_bps"] == 0)
        assert np.all(~pub.rows["highbw"])
        assert np.all(pub.rows["initial_ttl"] == 0)

    def test_identity_columns_kept(self):
        table = make_table()
        pub = table.public_view()
        assert np.array_equal(pub.rows["ip"], table.rows["ip"])
        assert np.array_equal(pub.rows["asn"], table.rows["asn"])
        assert np.array_equal(pub.rows["cc"], table.rows["cc"])
