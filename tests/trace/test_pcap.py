"""pcap export/import round-trips."""

import struct

import numpy as np
import pytest

from repro.errors import TraceError
from repro.trace.packets import PacketSynthesizer
from repro.trace.pcap import PCAP_MAGIC, read_pcap, write_pcap
from repro.trace.records import PACKET_DTYPE


@pytest.fixture(scope="module")
def packets(sim_small):
    probe = int(sim_small.probe_ips[2])
    mask = (sim_small.transfers["src"] == probe) | (
        sim_small.transfers["dst"] == probe
    )
    synth = PacketSynthesizer(sim_small.hosts, sim_small.world.paths)
    return synth.expand(sim_small.transfers[mask][:1500])


class TestRoundTrip:
    def test_fields_preserved(self, packets, tmp_path):
        path = write_pcap(tmp_path / "t.pcap", packets)
        back = read_pcap(path)
        assert len(back) == len(packets)
        for field in ("src", "dst", "size", "ttl", "kind"):
            assert np.array_equal(back[field], packets[field]), field

    def test_timestamps_microsecond_accurate(self, packets, tmp_path):
        path = write_pcap(tmp_path / "t.pcap", packets)
        back = read_pcap(path)
        assert np.allclose(back["ts"], packets["ts"], atol=1e-6)

    def test_suffix_appended(self, packets, tmp_path):
        path = write_pcap(tmp_path / "trace", packets[:5])
        assert path.suffix == ".pcap"

    def test_empty_trace(self, tmp_path):
        path = write_pcap(tmp_path / "e.pcap", np.empty(0, dtype=PACKET_DTYPE))
        assert len(read_pcap(path)) == 0


class TestFormat:
    def test_magic_and_linktype(self, packets, tmp_path):
        path = write_pcap(tmp_path / "t.pcap", packets[:3])
        header = path.read_bytes()[:24]
        magic, _vmaj, _vmin, _tz, _sig, _snap, linktype = struct.unpack(
            "<IHHiIII", header
        )
        assert magic == PCAP_MAGIC
        assert linktype == 1  # Ethernet

    def test_frames_are_valid_ipv4_udp(self, packets, tmp_path):
        path = write_pcap(tmp_path / "t.pcap", packets[:1])
        data = path.read_bytes()
        frame = data[24 + 16 :]
        assert frame[12:14] == b"\x08\x00"       # EtherType IPv4
        assert frame[14] == 0x45                  # version/IHL
        assert frame[14 + 9] == 17                # protocol UDP


class TestErrors:
    def test_wrong_dtype_rejected(self, tmp_path):
        with pytest.raises(TraceError):
            write_pcap(tmp_path / "x.pcap", np.zeros(2, dtype=np.float64))

    def test_bad_magic_rejected(self, tmp_path):
        bad = tmp_path / "bad.pcap"
        bad.write_bytes(struct.pack("<IHHiIII", 0xDEADBEEF, 2, 4, 0, 0, 65535, 1))
        with pytest.raises(TraceError):
            read_pcap(bad)

    def test_truncated_rejected(self, packets, tmp_path):
        path = write_pcap(tmp_path / "t.pcap", packets[:3])
        data = path.read_bytes()
        (tmp_path / "cut.pcap").write_bytes(data[:-7])
        with pytest.raises(TraceError):
            read_pcap(tmp_path / "cut.pcap")

    def test_header_too_short(self, tmp_path):
        short = tmp_path / "s.pcap"
        short.write_bytes(b"abc")
        with pytest.raises(TraceError):
            read_pcap(short)
