"""Probe-side capture filtering."""

import numpy as np

from repro.trace.capture import captured_by, probe_transfers, split_directions
from repro.trace.records import TRANSFER_DTYPE, PacketKind


def log(rows):
    out = np.zeros(len(rows), dtype=TRANSFER_DTYPE)
    for i, (src, dst) in enumerate(rows):
        out["src"][i], out["dst"][i] = src, dst
        out["bytes"][i] = 100 + i
        out["kind"][i] = int(PacketKind.VIDEO)
    return out


class TestCapturedBy:
    def test_keeps_probe_touching_only(self):
        records = log([(1, 2), (2, 3), (3, 4), (1, 4)])
        probes = np.array([1], dtype=np.uint32)
        out = captured_by(records, probes)
        assert len(out) == 2
        assert set(zip(out["src"].tolist(), out["dst"].tolist())) == {(1, 2), (1, 4)}

    def test_remote_remote_invisible(self):
        records = log([(5, 6), (7, 8)])
        assert len(captured_by(records, np.array([1], dtype=np.uint32))) == 0

    def test_empty_input(self):
        assert len(captured_by(log([]), np.array([1], dtype=np.uint32))) == 0

    def test_probe_probe_kept(self):
        records = log([(1, 2)])
        out = captured_by(records, np.array([1, 2], dtype=np.uint32))
        assert len(out) == 1


class TestProbeView:
    def test_single_probe_view(self):
        records = log([(1, 2), (2, 1), (3, 4), (1, 5)])
        own = probe_transfers(records, 1)
        assert len(own) == 3

    def test_split_directions(self):
        records = log([(1, 2), (2, 1), (9, 1), (1, 9)])
        rx, tx = split_directions(records, 1)
        assert set(rx["src"].tolist()) == {2, 9}
        assert set(tx["dst"].tolist()) == {2, 9}
        assert np.all(rx["dst"] == 1)
        assert np.all(tx["src"] == 1)

    def test_simulated_capture_covers_probe_traffic(self, sim_small):
        probes = sim_small.probe_ips
        out = captured_by(sim_small.transfers, probes)
        # The engine is probe-centric: everything it logs is probe-visible.
        assert len(out) == len(sim_small.transfers)
