"""Packet-train synthesis: counts, dispersion, TTLs."""

import numpy as np
import pytest

from repro.errors import TraceError
from repro.trace.packets import (
    IPG_JITTER_SPAN,
    PACKET_PAYLOAD_BYTES,
    PacketSynthesizer,
    expand_signaling,
    packet_counts,
    transfer_gaps,
)
from repro.trace.records import SIGNALING_DTYPE, TRANSFER_DTYPE, PacketKind
from repro.units import BITS_PER_BYTE


@pytest.fixture(scope="module")
def synth(sim_small):
    return PacketSynthesizer(sim_small.hosts, sim_small.world.paths)


@pytest.fixture(scope="module")
def video_sample(sim_small):
    tr = sim_small.transfers
    video = tr[tr["kind"] == int(PacketKind.VIDEO)]
    return video[:200]


class TestPacketCounts:
    def test_video_cut_at_mtu(self, video_sample):
        counts = packet_counts(video_sample)
        expected = -(-video_sample["bytes"].astype(np.int64) // PACKET_PAYLOAD_BYTES)
        assert np.array_equal(counts, expected)

    def test_signaling_single_packet(self, sim_small):
        tr = sim_small.transfers
        sig = tr[tr["kind"] != int(PacketKind.VIDEO)][:50]
        assert np.all(packet_counts(sig) == 1)


class TestGaps:
    def test_gap_encodes_sender_uplink(self, sim_small, video_sample):
        gaps = transfer_gaps(video_sample, sim_small.hosts)
        up = sim_small.hosts.gather(video_sample["src"], "up_bps")
        base = PACKET_PAYLOAD_BYTES * BITS_PER_BYTE / up
        assert np.all(gaps >= base * 0.999)
        assert np.all(gaps <= base * (1 + IPG_JITTER_SPAN) * 1.001)

    def test_single_packet_transfers_have_inf_gap(self, sim_small):
        tr = sim_small.transfers
        sig = tr[tr["kind"] == int(PacketKind.SIGNALING)][:50]
        assert np.all(np.isinf(transfer_gaps(sig, sim_small.hosts)))

    def test_gap_classifies_lan_vs_dsl(self, sim_small, video_sample):
        gaps = transfer_gaps(video_sample, sim_small.hosts)
        highbw = sim_small.hosts.gather(video_sample["src"], "highbw")
        if highbw.any():
            assert np.all(gaps[highbw] < 1e-3)
        if (~highbw).any():
            assert np.all(gaps[~highbw] > 1e-3)


class TestExpand:
    def test_total_bytes_preserved(self, synth, video_sample):
        packets = synth.expand(video_sample)
        assert packets["size"].sum() == video_sample["bytes"].sum()

    def test_packet_count(self, synth, video_sample):
        packets = synth.expand(video_sample)
        assert len(packets) == packet_counts(video_sample).sum()

    def test_sizes_mtu_except_tail(self, synth, video_sample):
        packets = synth.expand(video_sample)
        assert packets["size"].max() == PACKET_PAYLOAD_BYTES
        assert np.all(packets["size"] >= 1)

    def test_time_sorted(self, synth, video_sample):
        packets = synth.expand(video_sample)
        assert np.all(np.diff(packets["ts"]) >= 0)

    def test_ttl_constant_per_pair(self, synth, video_sample):
        packets = synth.expand(video_sample)
        key = (packets["src"].astype(np.uint64) << np.uint64(32)) | packets["dst"]
        for k in np.unique(key)[:20]:
            ttls = packets["ttl"][key == k]
            assert len(np.unique(ttls)) == 1

    def test_ttl_plausible(self, synth, video_sample):
        packets = synth.expand(video_sample)
        initial = synth._hosts.gather(packets["src"], "initial_ttl")
        hops = initial.astype(np.int64) - packets["ttl"].astype(np.int64)
        assert np.all(hops >= 0)
        assert np.all(hops < 40)

    def test_empty(self, synth):
        out = synth.expand(np.empty(0, dtype=TRANSFER_DTYPE))
        assert len(out) == 0

    def test_wrong_dtype_rejected(self, synth):
        with pytest.raises(TraceError):
            synth.expand(np.zeros(2, dtype=SIGNALING_DTYPE))


class TestExpandSignaling:
    def _intervals(self, rows):
        out = np.zeros(len(rows), dtype=SIGNALING_DTYPE)
        for i, (src, dst, start, stop, interval, nbytes) in enumerate(rows):
            out[i] = (src, dst, start, stop, interval, nbytes)
        return out

    def test_count(self):
        ivs = self._intervals([(1, 2, 0.0, 10.0, 2.0, 120)])
        out = expand_signaling(ivs)
        assert len(out) == 6  # t = 0, 2, 4, 6, 8, 10

    def test_timestamps(self):
        ivs = self._intervals([(1, 2, 5.0, 9.0, 2.0, 120)])
        out = expand_signaling(ivs)
        assert out["ts"].tolist() == [5.0, 7.0, 9.0]

    def test_kind_and_bytes(self):
        ivs = self._intervals([(1, 2, 0.0, 4.0, 2.0, 60)])
        out = expand_signaling(ivs)
        assert np.all(out["kind"] == int(PacketKind.SIGNALING))
        assert np.all(out["bytes"] == 60)

    def test_multiple_intervals_merged_sorted(self):
        ivs = self._intervals(
            [(1, 2, 10.0, 14.0, 2.0, 60), (3, 4, 0.0, 4.0, 2.0, 60)]
        )
        out = expand_signaling(ivs)
        assert np.all(np.diff(out["ts"]) >= 0)
        assert len(out) == 6

    def test_empty(self):
        assert len(expand_signaling(np.empty(0, dtype=SIGNALING_DTYPE))) == 0

    def test_wrong_dtype_rejected(self):
        with pytest.raises(TraceError):
            expand_signaling(np.zeros(1, dtype=TRANSFER_DTYPE))
