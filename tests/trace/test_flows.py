"""Flow aggregation — including fast-path vs packet-path equivalence."""

import numpy as np
import pytest

from repro.errors import TraceError
from repro.trace.capture import captured_by
from repro.trace.flows import FlowTable, build_flow_table
from repro.trace.packets import PacketSynthesizer, expand_signaling
from repro.trace.records import FLOW_DTYPE


class TestBuildFlowTable:
    def test_flows_cover_all_probe_pairs(self, sim_small, flows_small):
        tr = captured_by(sim_small.transfers, sim_small.probe_ips)
        pairs = {(int(s), int(d)) for s, d in zip(tr["src"], tr["dst"])}
        flow_pairs = {
            (int(s), int(d))
            for s, d in zip(flows_small.flows["src"], flows_small.flows["dst"])
        }
        assert pairs <= flow_pairs

    def test_byte_conservation(self, sim_small, flows_small):
        logged = int(sim_small.transfers["bytes"].astype(np.uint64).sum())
        signaling = expand_signaling(sim_small.signaling)
        logged += int(signaling["bytes"].astype(np.uint64).sum())
        assert int(flows_small.flows["bytes"].sum()) == logged

    def test_video_bytes_subset(self, flows_small):
        f = flows_small.flows
        assert np.all(f["video_bytes"] <= f["bytes"])
        assert np.all(f["video_pkts"] <= f["pkts"])

    def test_timestamps_ordered(self, flows_small):
        f = flows_small.flows
        assert np.all(f["first_ts"] <= f["last_ts"])

    def test_min_ipg_positive(self, flows_small):
        assert np.all(flows_small.flows["min_ipg"] > 0)

    def test_video_flows_have_finite_ipg(self, flows_small):
        f = flows_small.flows
        video = f[f["video_pkts"] > 0]
        assert np.all(np.isfinite(video["min_ipg"]))

    def test_signaling_only_flows_have_inf_ipg(self, flows_small):
        f = flows_small.flows
        sig_only = f[f["video_pkts"] == 0]
        assert np.all(np.isinf(sig_only["min_ipg"]))

    def test_ttl_plausible(self, flows_small):
        ttl = flows_small.flows["ttl"]
        assert np.all((ttl > 80) & (ttl <= 128) | (ttl > 30) & (ttl <= 64))

    def test_wrong_dtype_rejected(self, sim_small):
        with pytest.raises(TraceError):
            build_flow_table(
                np.zeros(2, dtype=FLOW_DTYPE),
                sim_small.signaling,
                sim_small.hosts,
                sim_small.world.paths,
            )

    def test_empty_log(self, sim_small):
        table = build_flow_table(
            np.empty(0, dtype=sim_small.transfers.dtype),
            np.empty(0, dtype=sim_small.signaling.dtype),
            sim_small.hosts,
            sim_small.world.paths,
        )
        assert len(table) == 0


class TestDirectionalSelectors:
    def test_received_by(self, flows_small):
        probe = int(flows_small.probe_ips[0])
        rx = flows_small.received_by(probe)
        assert np.all(rx["dst"] == np.uint32(probe))

    def test_sent_by(self, flows_small):
        probe = int(flows_small.probe_ips[0])
        tx = flows_small.sent_by(probe)
        assert np.all(tx["src"] == np.uint32(probe))

    def test_with_video(self, flows_small):
        assert np.all(flows_small.with_video()["video_bytes"] > 0)


class TestPacketPathEquivalence:
    """The pcap-analyst path must agree with the fast path."""

    @pytest.fixture(scope="class")
    def both(self, sim_small):
        # Restrict to one probe's traffic to keep packet volume small.
        probe = int(sim_small.probe_ips[3])
        mask = (sim_small.transfers["src"] == probe) | (
            sim_small.transfers["dst"] == probe
        )
        transfers = sim_small.transfers[mask][:3000]
        fast = build_flow_table(
            transfers,
            np.empty(0, dtype=sim_small.signaling.dtype),
            sim_small.hosts,
            sim_small.world.paths,
            probes_only=False,
        )
        synth = PacketSynthesizer(sim_small.hosts, sim_small.world.paths)
        packets = synth.expand(transfers)
        slow = FlowTable.from_packets(packets, sim_small.hosts)
        return fast, slow

    def test_same_pairs(self, both):
        fast, slow = both
        fp = set(zip(fast.flows["src"].tolist(), fast.flows["dst"].tolist()))
        sp = set(zip(slow.flows["src"].tolist(), slow.flows["dst"].tolist()))
        assert fp == sp

    def test_same_bytes_and_pkts(self, both):
        fast, slow = both
        f = np.sort(fast.flows, order=["src", "dst"])
        s = np.sort(slow.flows, order=["src", "dst"])
        assert np.array_equal(f["bytes"], s["bytes"])
        assert np.array_equal(f["pkts"], s["pkts"])
        assert np.array_equal(f["video_bytes"], s["video_bytes"])

    def test_same_ttl(self, both):
        fast, slow = both
        f = np.sort(fast.flows, order=["src", "dst"])
        s = np.sort(slow.flows, order=["src", "dst"])
        assert np.array_equal(f["ttl"], s["ttl"])

    def test_equivalent_bw_classification(self, both):
        # min IPG values may differ slightly (the packet path can observe
        # inter-transfer gaps), but the 1 ms classification must agree for
        # flows with video trains.
        fast, slow = both
        f = np.sort(fast.flows, order=["src", "dst"])
        s = np.sort(slow.flows, order=["src", "dst"])
        has_train = f["video_pkts"] >= 2
        assert np.array_equal(
            f["min_ipg"][has_train] < 1e-3, s["min_ipg"][has_train] < 1e-3
        )
