"""IP → AS/CC/subnet resolution."""

import numpy as np
import pytest

from repro.errors import RegistryError
from repro.heuristics.registry import IpRegistry
from repro.topology.ip import parse_ip


def small_registry():
    return IpRegistry(
        networks=np.array([parse_ip("10.0.0.0"), parse_ip("10.1.0.0")], dtype=np.uint64),
        prefix_sizes=np.array([65536, 65536], dtype=np.uint64),
        asns=np.array([100, 200]),
        country_codes=np.array(["IT", "CN"]),
    )


class TestBasicLookups:
    def test_asn_of(self):
        reg = small_registry()
        out = reg.asn_of(np.array([parse_ip("10.0.5.1"), parse_ip("10.1.9.9")]))
        assert out.tolist() == [100, 200]

    def test_country_of(self):
        reg = small_registry()
        out = reg.country_of(np.array([parse_ip("10.1.0.1")]))
        assert out[0] == "CN"

    def test_resolve_scalar(self):
        assert small_registry().resolve(parse_ip("10.0.0.7")) == (100, "IT")

    def test_unresolvable_raises(self):
        reg = small_registry()
        with pytest.raises(RegistryError):
            reg.asn_of(np.array([parse_ip("11.0.0.1")]))
        with pytest.raises(RegistryError):
            reg.asn_of(np.array([parse_ip("9.255.255.255")]))

    def test_boundary_addresses(self):
        reg = small_registry()
        assert reg.resolve(parse_ip("10.0.0.0"))[0] == 100
        assert reg.resolve(parse_ip("10.0.255.255"))[0] == 100
        assert reg.resolve(parse_ip("10.1.0.0"))[0] == 200

    def test_subnet_of(self):
        reg = small_registry()
        subs = reg.subnet_of(
            np.array([parse_ip("10.0.1.5"), parse_ip("10.0.1.200"), parse_ip("10.0.2.5")])
        )
        assert subs[0] == subs[1] != subs[2]

    def test_overlapping_prefixes_rejected(self):
        with pytest.raises(RegistryError):
            IpRegistry(
                networks=np.array([0, 100], dtype=np.uint64),
                prefix_sizes=np.array([256, 256], dtype=np.uint64),
                asns=np.array([1, 2]),
                country_codes=np.array(["IT", "FR"]),
            )


class TestFromWorld:
    def test_resolves_every_simulated_host(self, sim_small):
        reg = IpRegistry.from_world(sim_small.world)
        rows = sim_small.hosts.rows
        assert np.array_equal(reg.asn_of(rows["ip"]), rows["asn"])
        assert np.array_equal(reg.country_of(rows["ip"]), rows["cc"])

    def test_subnet_matches_ground_truth(self, sim_small):
        reg = IpRegistry.from_world(sim_small.world)
        rows = sim_small.hosts.rows
        assert np.array_equal(reg.subnet_of(rows["ip"]), rows["subnet"])


class TestFromHosts:
    def test_exact_address_lookup(self, sim_small):
        reg = IpRegistry.from_hosts(sim_small.hosts)
        rows = sim_small.hosts.rows
        assert np.array_equal(reg.asn_of(rows["ip"]), rows["asn"])

    def test_agrees_with_world_registry(self, sim_small):
        world_reg = IpRegistry.from_world(sim_small.world)
        host_reg = IpRegistry.from_hosts(sim_small.hosts)
        ips = sim_small.hosts.rows["ip"]
        assert np.array_equal(world_reg.asn_of(ips), host_reg.asn_of(ips))
        assert np.array_equal(world_reg.country_of(ips), host_reg.country_of(ips))

    def test_empty_hosts_rejected(self):
        from repro.trace.hosts import HOST_DTYPE, HostTable

        with pytest.raises(RegistryError):
            IpRegistry.from_hosts(HostTable(np.empty(0, dtype=HOST_DTYPE)))

    def test_len(self, sim_small):
        reg = IpRegistry.from_hosts(sim_small.hosts)
        assert len(reg) == len(sim_small.hosts)
