"""Min-IPG capacity inference, validated against simulator ground truth."""

import numpy as np
import pytest

from repro.heuristics.bandwidth import (
    HIGH_BW_IPG_THRESHOLD_S,
    classify_high_bandwidth,
    estimate_capacity_bps,
)
from repro.units import mbps


class TestThreshold:
    def test_paper_identity(self):
        # 1250 B at 10 Mb/s is exactly 1 ms.
        assert HIGH_BW_IPG_THRESHOLD_S == pytest.approx(1e-3)

    def test_classification(self):
        gaps = np.array([1e-4, 9.9e-4, 1e-3, 2.5e-3, np.inf])
        out = classify_high_bandwidth(gaps)
        assert out.tolist() == [True, True, False, False, False]

    def test_inf_is_conservative_low(self):
        assert not classify_high_bandwidth(np.array([np.inf]))[0]

    def test_custom_threshold(self):
        gaps = np.array([2e-3])
        assert classify_high_bandwidth(gaps, threshold_s=5e-3)[0]


class TestCapacityEstimate:
    def test_point_estimate(self):
        # 1 ms gap → 10 Mb/s.
        assert estimate_capacity_bps(np.array([1e-3]))[0] == pytest.approx(mbps(10))

    def test_inf_gap_gives_zero(self):
        assert estimate_capacity_bps(np.array([np.inf]))[0] == 0.0

    def test_monotone(self):
        gaps = np.array([1e-4, 1e-3, 1e-2])
        est = estimate_capacity_bps(gaps)
        assert est[0] > est[1] > est[2]


class TestGroundTruthRecovery:
    """The estimator must recover the simulator's true peer classes."""

    def test_classification_matches_truth(self, flows_small, sim_small):
        flows = flows_small.with_video()
        # Only flows with real packet trains are classifiable.
        flows = flows[flows["video_pkts"] >= 2]
        inferred = classify_high_bandwidth(flows["min_ipg"])
        truth = sim_small.hosts.gather(flows["src"], "highbw")
        # Sender-paced trains make the inference exact in our model.
        assert np.array_equal(inferred, truth)

    def test_capacity_estimates_within_jitter(self, flows_small, sim_small):
        flows = flows_small.with_video()
        flows = flows[flows["video_pkts"] >= 2]
        est = estimate_capacity_bps(flows["min_ipg"])
        truth = sim_small.hosts.gather(flows["src"], "up_bps")
        ratio = est / truth
        # One-sided jitter widens gaps by at most 8 %.
        assert np.all(ratio > 0.9)
        assert np.all(ratio <= 1.0 + 1e-9)
