"""Passive RTT estimation."""

import numpy as np
import pytest

from repro.errors import AnalysisError
from repro.heuristics.rtt import (
    estimate_rtt_from_packets,
    estimate_rtt_from_transfers,
)
from repro.trace.packets import PacketSynthesizer
from repro.trace.records import FLOW_DTYPE, TRANSFER_DTYPE, PacketKind


def make_log(rows):
    out = np.zeros(len(rows), dtype=TRANSFER_DTYPE)
    for i, (ts, src, dst, kind) in enumerate(rows):
        out[i] = (ts, src, dst, 80 if kind == PacketKind.CONTROL else 16000,
                  int(kind), 1e8)
    return out


class TestTransfersVariant:
    def test_simple_match(self):
        log = make_log(
            [
                (1.0, 10, 20, PacketKind.CONTROL),   # probe 10 asks peer 20
                (1.05, 20, 10, PacketKind.VIDEO),    # data comes back
                (2.0, 10, 20, PacketKind.CONTROL),
                (2.20, 20, 10, PacketKind.VIDEO),
            ]
        )
        rtt = estimate_rtt_from_transfers(log, probe_ip=10)
        assert rtt == {20: pytest.approx(0.05)}

    def test_minimum_over_exchanges(self):
        log = make_log(
            [
                (1.0, 10, 20, PacketKind.CONTROL),
                (1.30, 20, 10, PacketKind.VIDEO),
                (2.0, 10, 20, PacketKind.CONTROL),
                (2.02, 20, 10, PacketKind.VIDEO),
            ]
        )
        assert estimate_rtt_from_transfers(log, 10)[20] == pytest.approx(0.02)

    def test_unanswered_requests_absent(self):
        log = make_log([(1.0, 10, 20, PacketKind.CONTROL)])
        assert estimate_rtt_from_transfers(log, 10) == {}

    def test_stale_responses_ignored(self):
        log = make_log(
            [
                (1.0, 10, 20, PacketKind.CONTROL),
                (9.0, 20, 10, PacketKind.VIDEO),   # way beyond max_match
            ]
        )
        assert estimate_rtt_from_transfers(log, 10, max_match_s=5.0) == {}

    def test_wrong_dtype_rejected(self):
        with pytest.raises(AnalysisError):
            estimate_rtt_from_transfers(np.zeros(1, dtype=FLOW_DTYPE), 10)

    def test_per_peer_separation(self):
        log = make_log(
            [
                (1.0, 10, 20, PacketKind.CONTROL),
                (1.0, 10, 30, PacketKind.CONTROL),
                (1.01, 20, 10, PacketKind.VIDEO),
                (1.50, 30, 10, PacketKind.VIDEO),
            ]
        )
        rtt = estimate_rtt_from_transfers(log, 10)
        assert rtt[20] == pytest.approx(0.01)
        assert rtt[30] == pytest.approx(0.50)


class TestOnSimulation:
    def test_estimates_plausible_and_rank_peers(self, sim_small):
        probe = int(sim_small.probe_ips[0])
        rtt = estimate_rtt_from_transfers(sim_small.transfers, probe)
        assert len(rtt) > 5
        values = np.array(list(rtt.values()))
        # Lower-bounded by the engine's minimum latency, upper-bounded by
        # serialisation at DSL rates plus queueing.
        assert np.all(values > 0)
        assert np.all(values < 5.0)
        # Same-subnet peers (if any answered) must look fast.
        hosts = sim_small.hosts
        probe_subnet = int(hosts.row_for(probe)["subnet"])
        local = [
            v for ip, v in rtt.items()
            if int(hosts.row_for(ip)["subnet"]) == probe_subnet
        ]
        far = [
            v for ip, v in rtt.items()
            if str(hosts.row_for(ip)["cc"]) == "CN"
        ]
        if local and far:
            assert min(local) < np.median(far)

    def test_packet_variant_agrees(self, sim_small):
        probe = int(sim_small.probe_ips[0])
        mask = (sim_small.transfers["src"] == probe) | (
            sim_small.transfers["dst"] == probe
        )
        transfers = sim_small.transfers[mask]
        synth = PacketSynthesizer(sim_small.hosts, sim_small.world.paths)
        packets = synth.expand(transfers)
        rtt_t = estimate_rtt_from_transfers(transfers, probe)
        rtt_p = estimate_rtt_from_packets(packets, probe)
        shared = set(rtt_t) & set(rtt_p)
        assert len(shared) > 3
        for ip in shared:
            assert rtt_p[ip] == pytest.approx(rtt_t[ip], abs=1e-6)
