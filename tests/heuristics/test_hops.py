"""TTL → hop inference."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.errors import AnalysisError
from repro.heuristics.hops import hops_from_ttl, infer_initial_ttl


class TestInferInitial:
    def test_windows_band(self):
        assert infer_initial_ttl(np.array([128]))[0] == 128
        assert infer_initial_ttl(np.array([110]))[0] == 128
        assert infer_initial_ttl(np.array([65]))[0] == 128

    def test_unix_band(self):
        assert infer_initial_ttl(np.array([64]))[0] == 64
        assert infer_initial_ttl(np.array([45]))[0] == 64

    def test_255_band(self):
        assert infer_initial_ttl(np.array([250]))[0] == 255
        assert infer_initial_ttl(np.array([129]))[0] == 255

    def test_invalid_rejected(self):
        with pytest.raises(AnalysisError):
            infer_initial_ttl(np.array([0]))
        with pytest.raises(AnalysisError):
            infer_initial_ttl(np.array([256]))

    @given(st.integers(min_value=1, max_value=255))
    def test_initial_at_least_received(self, ttl):
        assert int(infer_initial_ttl(np.array([ttl]))[0]) >= ttl


class TestHops:
    def test_paper_formula(self):
        # Paper §III-B: HOP = 128 − TTL with Windows senders.
        assert hops_from_ttl(np.array([109]), assume_initial=128)[0] == 19

    def test_auto_initial(self):
        hops = hops_from_ttl(np.array([109, 45, 250]))
        assert hops.tolist() == [19, 19, 5]

    def test_zero_hops_same_subnet(self):
        assert hops_from_ttl(np.array([128]))[0] == 0

    def test_wrong_fixed_initial_clamped(self):
        # A 255-initial packet misread as 128 would go negative; clamp to 0.
        assert hops_from_ttl(np.array([200]), assume_initial=128)[0] == 0

    def test_implausible_initial_rejected(self):
        with pytest.raises(AnalysisError):
            hops_from_ttl(np.array([100]), assume_initial=100)

    @given(st.integers(min_value=1, max_value=255))
    def test_property_nonnegative(self, ttl):
        assert int(hops_from_ttl(np.array([ttl]))[0]) >= 0


class TestGroundTruthRecovery:
    def test_recovers_simulated_hops(self, flows_small, sim_small):
        """The TTL path must invert the simulator's hop model exactly for
        128-initial senders (and for 64-initial via auto-detection, since
        simulated paths are far shorter than 64)."""
        flows = flows_small.flows
        inferred = hops_from_ttl(flows["ttl"].astype(np.int64))
        hosts = sim_small.hosts
        paths = sim_small.world.paths
        true_hops = paths.hops_many(
            flows["src"], hosts.gather(flows["src"], "asn"),
            hosts.gather(flows["src"], "subnet"),
            hosts.gather(flows["src"], "access_depth"),
            flows["dst"], hosts.gather(flows["dst"], "asn"),
            hosts.gather(flows["dst"], "subnet"),
            hosts.gather(flows["dst"], "access_depth"),
        )
        assert np.array_equal(inferred, true_hops)

    def test_zero_hops_iff_same_subnet(self, flows_small, sim_small):
        flows = flows_small.flows
        inferred = hops_from_ttl(flows["ttl"].astype(np.int64))
        same_subnet = sim_small.hosts.gather(
            flows["src"], "subnet"
        ) == sim_small.hosts.gather(flows["dst"], "subnet")
        assert np.array_equal(inferred == 0, same_subnet)
