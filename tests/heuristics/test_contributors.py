"""Contributor identification, validated against ground-truth labels."""

import numpy as np
import pytest

from repro.errors import AnalysisError
from repro.heuristics.contributors import (
    ContributorCriteria,
    contributor_mask,
    contributor_mask_packets,
)
from repro.trace.packets import PacketSynthesizer
from repro.trace.records import FLOW_DTYPE


class TestCriteria:
    def test_defaults_sane(self):
        crit = ContributorCriteria()
        assert crit.payload_packet_bytes < 1250
        assert crit.min_payload_bytes >= 2 * crit.payload_packet_bytes

    def test_invalid_rejected(self):
        with pytest.raises(AnalysisError):
            ContributorCriteria(payload_packet_bytes=0)


def _flow(nbytes, pkts, video_bytes=0, video_pkts=0):
    row = np.zeros(1, dtype=FLOW_DTYPE)
    row["bytes"], row["pkts"] = nbytes, pkts
    row["video_bytes"], row["video_pkts"] = video_bytes, video_pkts
    row["min_ipg"] = np.inf
    return row


class TestFlowHeuristic:
    def test_video_flow_detected(self):
        # 10 chunks of video: big mean packet size, big volume.
        flow = _flow(160_000, 130, 160_000, 130)
        assert contributor_mask(flow)[0]

    def test_signaling_only_rejected(self):
        # Hundreds of tiny keepalives: volume without payload-sized packets.
        flow = _flow(60_000, 500)
        assert not contributor_mask(flow)[0]

    def test_tiny_exchange_rejected(self):
        flow = _flow(1250, 1, 1250, 1)
        assert not contributor_mask(flow)[0]

    def test_empty(self):
        assert len(contributor_mask(np.empty(0, dtype=FLOW_DTYPE))) == 0

    def test_wrong_dtype_rejected(self):
        with pytest.raises(AnalysisError):
            contributor_mask(np.zeros(1, dtype=np.float64))


class TestGroundTruthValidation:
    """Accuracy against the simulator's video_bytes labels (unavailable to
    the heuristic, which only reads bytes/pkts)."""

    def test_conservative_and_accurate(self, flows_small):
        flows = flows_small.flows
        inferred = contributor_mask(flows)
        truth = flows["video_bytes"] > 0
        # Conservative: (almost) nothing without video is flagged.
        false_pos = (inferred & ~truth).sum()
        assert false_pos == 0
        # Accurate: misses only marginal few-chunk exchanges drowned in
        # signaling (tiny mean packet size).
        missed = flows[truth & ~inferred]
        assert np.all(missed["video_bytes"] <= 3 * 16_000)
        # Overall agreement is high.
        agree = (inferred == truth).mean()
        assert agree > 0.9

    def test_byte_coverage_near_total(self, flows_small):
        flows = flows_small.flows
        inferred = contributor_mask(flows)
        truth_bytes = flows["video_bytes"].sum()
        caught = flows["video_bytes"][inferred].sum()
        assert caught / truth_bytes > 0.98


class TestPacketHeuristic:
    def test_agrees_with_flow_heuristic(self, sim_small):
        probe = int(sim_small.probe_ips[7])
        mask = (sim_small.transfers["src"] == probe) | (
            sim_small.transfers["dst"] == probe
        )
        transfers = sim_small.transfers[mask][:2000]
        synth = PacketSynthesizer(sim_small.hosts, sim_small.world.paths)
        packets = synth.expand(transfers)
        by_pair = contributor_mask_packets(packets)
        from repro.trace.flows import build_flow_table

        table = build_flow_table(
            transfers,
            np.empty(0, dtype=sim_small.signaling.dtype),
            sim_small.hosts,
            sim_small.world.paths,
            probes_only=False,
        )
        flow_mask = contributor_mask(table.flows)
        agree = 0
        for row, flagged in zip(table.flows, flow_mask):
            key = (int(row["src"]), int(row["dst"]))
            agree += by_pair.get(key, False) == bool(flagged)
        assert agree / len(table.flows) > 0.95

    def test_empty(self):
        from repro.trace.records import PACKET_DTYPE

        assert contributor_mask_packets(np.empty(0, dtype=PACKET_DTYPE)) == {}

    def test_wrong_dtype_rejected(self):
        with pytest.raises(AnalysisError):
            contributor_mask_packets(np.zeros(1, dtype=FLOW_DTYPE))
