"""Network-friendliness metrics and what-if evaluation."""

import math

import numpy as np
import pytest

from repro.errors import AnalysisError
from repro.friendliness.cost import cost_comparison_rows, traffic_cost


class TestTrafficCost:
    @pytest.fixture(scope="class")
    def cost(self, flows_small, sim_small):
        return traffic_cost(flows_small, sim_small.world.paths)

    def test_positive_volume(self, cost):
        assert cost.total_bytes > 0
        assert cost.byte_hops > 0

    def test_mean_hops_plausible(self, cost):
        # Dominated by CN→EU paths: somewhere between campus and the
        # longest simulated routes.
        assert 3 < cost.mean_hops_per_byte < 30

    def test_localization_fractions_nested(self, cost):
        # subnet ⊆ AS ⊆ country-or-AS: subnet share can't exceed AS share.
        assert cost.subnet_localization <= cost.as_localization + 1e-12
        assert 0 <= cost.as_localization <= 1
        assert 0 <= cost.cc_localization <= 1

    def test_transit_complement(self, cost):
        assert cost.transit_fraction == pytest.approx(
            1.0 - cost.as_localization
        )

    def test_accounting_consistency(self, cost):
        assert cost.intra_as_bytes + cost.transit_bytes == cost.total_bytes

    def test_video_only_smaller_than_total(self, flows_small, sim_small):
        video = traffic_cost(flows_small, sim_small.world.paths, video_only=True)
        everything = traffic_cost(flows_small, sim_small.world.paths, video_only=False)
        assert video.total_bytes < everything.total_bytes

    def test_empty_table(self, sim_small):
        from repro.trace.flows import FlowTable
        from repro.trace.records import FLOW_DTYPE

        empty = FlowTable(np.empty(0, dtype=FLOW_DTYPE), sim_small.hosts)
        cost = traffic_cost(empty, sim_small.world.paths)
        assert cost.total_bytes == 0
        assert math.isnan(cost.mean_hops_per_byte)

    def test_comparison_rows(self, cost):
        rows = cost_comparison_rows({"tvants": cost})
        assert rows[0][0] == "tvants"
        assert len(rows[0]) == 6

    def test_comparison_rows_empty_rejected(self):
        with pytest.raises(AnalysisError):
            cost_comparison_rows({})


class TestWhatIf:
    @pytest.fixture(scope="class")
    def outcome(self):
        from repro.friendliness.whatif import compare_profiles
        from repro.streaming.profiles import get_profile, napa_wine

        return compare_profiles(
            get_profile("sopcast").scaled(0.5),
            napa_wine().scaled(0.5),
            duration_s=60.0,
            seed=23,
        )

    def test_aware_client_localises(self, outcome):
        assert outcome.hop_reduction > 0.1
        assert outcome.transit_reduction > 0.1

    def test_quality_preserved(self, outcome):
        assert outcome.quality_preserved
        assert outcome.candidate.rate_sufficiency > 0.8

    def test_summaries_labelled(self, outcome):
        assert outcome.baseline.profile == "sopcast"
        assert outcome.candidate.profile == "napa-wine"


class TestLocalizationExperiment:
    def test_report_over_campaign(self, campaign_small):
        from repro.experiments.localization import (
            build_localization,
            render_localization,
        )

        report = build_localization(campaign_small)
        assert {r.app for r in report.rows} == {"pplive", "sopcast", "tvants"}
        # TVAnts (AS-aware) localises more than SopCast (blind).
        assert (
            report.row("tvants").cost.as_localization
            > report.row("sopcast").cost.as_localization
        )
        out = render_localization(report)
        assert "LOCALIZATION" in out
        with pytest.raises(KeyError):
            report.row("uusee")


class TestNapaWineProfile:
    def test_registered(self):
        from repro.streaming.profiles import get_profile

        p = get_profile("napa-wine")
        assert p.partner_weights.hop > 0
        assert p.provider_weights.net > 0

    def test_keeps_bandwidth_awareness(self):
        from repro.streaming.profiles import napa_wine

        assert napa_wine().provider_weights.bw > 1.0
