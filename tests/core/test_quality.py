"""Quality flags: graceful analyzer degradation on damaged input."""

import numpy as np
import pytest

from repro.core.framework import AwarenessAnalyzer
from repro.core.quality import QualityFlag
from repro.errors import AnalysisError
from repro.trace.flows import FlowTable, build_flow_table
from repro.trace.hosts import HostTable
from repro.trace.records import SIGNALING_DTYPE, empty_transfers


def degenerate_table(sim_small) -> FlowTable:
    """A flow table built from an empty capture on a tiny host set."""
    hosts = HostTable(sim_small.hosts.rows[:4].copy())
    return build_flow_table(
        empty_transfers(),
        np.empty(0, dtype=SIGNALING_DTYPE),
        hosts,
        sim_small.world.paths,
    )


class TestQualityFlag:
    def test_str_plain(self):
        assert str(QualityFlag("no-contributors")) == "[no-contributors]"

    def test_str_scoped(self):
        f = QualityFlag("single-class", "all preferred", metric="BW", direction="download")
        assert str(f) == "[single-class @ BW/download] all preferred"

    def test_frozen(self):
        with pytest.raises(AttributeError):
            QualityFlag("x").code = "y"


class TestDegradedAnalysis:
    def test_empty_capture_flags_not_raises(self, sim_small, registry_small):
        table = degenerate_table(sim_small)
        report = AwarenessAnalyzer(registry_small).analyze(table)
        assert report.degraded
        codes = {f.code for f in report.flags}
        assert "no-contributors" in codes
        # Indices come back NaN, not garbage.
        assert np.isnan(report["BW"].download.B)
        assert np.isnan(report["AS"].download.B_prime)

    def test_flags_for_scopes_to_metric(self, sim_small, registry_small):
        table = degenerate_table(sim_small)
        report = AwarenessAnalyzer(registry_small).analyze(table)
        # Direction-level flags (metric=None) are report-wide: visible
        # from any metric's perspective.
        assert report.flags_for("BW")
        assert all(
            f.metric in (None, "BW") for f in report.flags_for("BW")
        )

    def test_healthy_run_unflagged(self, report_small):
        assert not report_small.degraded
        assert report_small.flags == []

    def test_min_contributors_threshold(self, flows_small, registry_small):
        # An absurdly high threshold flags even the healthy run, and the
        # indices still compute.
        analyzer = AwarenessAnalyzer(registry_small, min_contributors=10_000)
        report = analyzer.analyze(flows_small)
        codes = {f.code for f in report.flags}
        assert "few-contributors" in codes
        assert np.isfinite(report["BW"].download.B)

    def test_min_contributors_validated(self, registry_small):
        with pytest.raises(AnalysisError):
            AwarenessAnalyzer(registry_small, min_contributors=0)
