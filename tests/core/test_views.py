"""Contributor views."""

import numpy as np
import pytest

from repro.core.views import Direction, DirectionalView, build_views


class TestBuildViews:
    def test_directions_oriented_correctly(self, flows_small):
        views = build_views(flows_small)
        probes = set(flows_small.probe_ips.tolist())
        assert set(views.download.probe_ip.tolist()) <= probes
        assert set(views.upload.probe_ip.tolist()) <= probes

    def test_download_rows_are_contributor_flows(self, flows_small):
        from repro.heuristics.contributors import contributor_mask

        views = build_views(flows_small)
        flows = flows_small.flows
        keep = contributor_mask(flows)
        expected = (
            keep & np.isin(flows["dst"], flows_small.probe_ips)
        ).sum()
        assert len(views.download) == expected

    def test_all_peers_superset_of_contributors(self, flows_small):
        contrib = build_views(flows_small)
        everyone = build_views(flows_small, contributors_only=False)
        assert len(everyone.download) >= len(contrib.download)
        assert len(everyone.upload) >= len(contrib.upload)

    def test_download_measurements_from_own_flow(self, flows_small):
        views = build_views(flows_small)
        # Download rows always carry finite TTL (the e→p stream exists).
        assert np.all(np.isfinite(views.download.ttl))

    def test_upload_reverse_measurements(self, flows_small):
        views = build_views(flows_small)
        v = views.upload
        # Most upload rows have reverse traffic (requests/signaling), so
        # coverage should be high but missing entries are tolerated.
        assert np.isfinite(v.ttl).mean() > 0.8

    def test_get_by_direction(self, flows_small):
        views = build_views(flows_small)
        assert views.get(Direction.DOWNLOAD) is views.download
        assert views.get(Direction.UPLOAD) is views.upload


class TestDirectionalView:
    def _view(self, n=4):
        return DirectionalView(
            direction=Direction.DOWNLOAD,
            probe_ip=np.arange(n, dtype=np.uint32),
            peer_ip=np.arange(n, dtype=np.uint32) + 100,
            bytes=np.full(n, 10, dtype=np.uint64),
            min_ipg=np.full(n, 1e-3),
            ttl=np.full(n, 120.0),
        )

    def test_select(self):
        v = self._view()
        picked = v.select(np.array([True, False, True, False]))
        assert len(picked) == 2
        assert picked.peer_ip.tolist() == [100, 102]

    def test_total_bytes(self):
        assert self._view().total_bytes == 40

    def test_distinct_peers(self):
        v = self._view()
        assert v.distinct_peers() == 4

    def test_misaligned_rejected(self):
        import repro.errors as errors

        with pytest.raises(errors.AnalysisError):
            DirectionalView(
                direction=Direction.DOWNLOAD,
                probe_ip=np.zeros(3, dtype=np.uint32),
                peer_ip=np.zeros(2, dtype=np.uint32),
                bytes=np.zeros(3, dtype=np.uint64),
                min_ipg=np.zeros(3),
                ttl=np.zeros(3),
            )
