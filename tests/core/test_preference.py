"""Preference indices — eqs. (1)–(8) — including property-based invariants."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.preference import per_probe_counts, preference_counts
from repro.core.views import Direction, DirectionalView
from repro.errors import AnalysisError


def make_view(nbytes, probes=None):
    n = len(nbytes)
    return DirectionalView(
        direction=Direction.DOWNLOAD,
        probe_ip=np.asarray(probes if probes is not None else np.zeros(n), dtype=np.uint32),
        peer_ip=np.arange(n, dtype=np.uint32) + 1000,
        bytes=np.asarray(nbytes, dtype=np.uint64),
        min_ipg=np.full(n, np.inf),
        ttl=np.full(n, 120.0),
    )


class TestCounts:
    def test_basic(self):
        view = make_view([100, 200, 300])
        counts = preference_counts(view, np.array([True, False, True]))
        assert counts.peers_preferred == 2
        assert counts.peers_other == 1
        assert counts.bytes_preferred == 400
        assert counts.bytes_other == 200

    def test_percentages(self):
        view = make_view([100, 300])
        counts = preference_counts(view, np.array([True, False]))
        assert counts.peer_percent == pytest.approx(50.0)
        assert counts.byte_percent == pytest.approx(25.0)

    def test_empty_view_nan(self):
        counts = preference_counts(make_view([]), np.zeros(0, dtype=bool))
        assert np.isnan(counts.peer_percent)
        assert np.isnan(counts.byte_percent)

    def test_zero_bytes_nan_byte_percent(self):
        counts = preference_counts(make_view([0, 0]), np.array([True, False]))
        assert counts.peer_percent == 50.0
        assert np.isnan(counts.byte_percent)

    def test_misaligned_rejected(self):
        with pytest.raises(AnalysisError):
            preference_counts(make_view([1, 2]), np.array([True]))


class TestPaperEquations:
    """Worked example mirroring the paper's definitions."""

    def test_eq_7_8(self):
        # Two probes; probe A has 2 preferred peers (100+200 B) and 1 other
        # (700 B); probe B has 1 preferred (50 B).
        view = make_view([100, 200, 700, 50], probes=[1, 1, 1, 2])
        ind = np.array([True, True, False, True])
        counts = preference_counts(view, ind)
        assert counts.peer_percent == pytest.approx(100 * 3 / 4)
        assert counts.byte_percent == pytest.approx(100 * 350 / 1050)

    def test_all_preferred(self):
        counts = preference_counts(make_view([10, 20]), np.array([True, True]))
        assert counts.peer_percent == 100.0
        assert counts.byte_percent == 100.0

    def test_none_preferred(self):
        counts = preference_counts(make_view([10, 20]), np.array([False, False]))
        assert counts.peer_percent == 0.0
        assert counts.byte_percent == 0.0


class TestPerProbe:
    def test_per_probe_sums_to_global(self):
        view = make_view([10, 20, 30, 40, 50], probes=[1, 1, 2, 2, 3])
        ind = np.array([True, False, True, True, False])
        global_counts = preference_counts(view, ind)
        per = per_probe_counts(view, ind)
        assert sum(c.peers_preferred for c in per.values()) == global_counts.peers_preferred
        assert sum(c.bytes_preferred for c in per.values()) == global_counts.bytes_preferred
        assert sum(c.total_peers for c in per.values()) == global_counts.total_peers

    def test_per_probe_keys(self):
        view = make_view([1, 2, 3], probes=[7, 8, 7])
        per = per_probe_counts(view, np.ones(3, dtype=bool))
        assert set(per) == {7, 8}


bytes_lists = st.lists(st.integers(min_value=0, max_value=10**9), min_size=1, max_size=40)


class TestProperties:
    @settings(max_examples=60, deadline=None)
    @given(bytes_lists, st.data())
    def test_bounds(self, nbytes, data):
        ind = np.array(
            data.draw(st.lists(st.booleans(), min_size=len(nbytes), max_size=len(nbytes)))
        )
        counts = preference_counts(make_view(nbytes), ind)
        assert 0 <= counts.peer_percent <= 100
        if counts.total_bytes > 0:
            assert 0 <= counts.byte_percent <= 100

    @settings(max_examples=40, deadline=None)
    @given(bytes_lists, st.integers(min_value=1, max_value=1000), st.data())
    def test_unit_invariance(self, nbytes, scale, data):
        """B is insensitive to the unit of measure (paper §III-A)."""
        ind = np.array(
            data.draw(st.lists(st.booleans(), min_size=len(nbytes), max_size=len(nbytes)))
        )
        a = preference_counts(make_view(nbytes), ind)
        b = preference_counts(make_view([x * scale for x in nbytes]), ind)
        if a.total_bytes > 0:
            assert a.byte_percent == pytest.approx(b.byte_percent)
        assert a.peer_percent == b.peer_percent

    @settings(max_examples=40, deadline=None)
    @given(bytes_lists, st.data())
    def test_complement_sums_to_100(self, nbytes, data):
        ind = np.array(
            data.draw(st.lists(st.booleans(), min_size=len(nbytes), max_size=len(nbytes)))
        )
        a = preference_counts(make_view(nbytes), ind)
        b = preference_counts(make_view(nbytes), ~ind)
        assert a.peer_percent + b.peer_percent == pytest.approx(100.0)
        if a.total_bytes > 0:
            assert a.byte_percent + b.byte_percent == pytest.approx(100.0)
