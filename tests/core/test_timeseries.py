"""Time-windowed preference indices."""

import numpy as np
import pytest

from repro.core.partitions import ASPartition, BWPartition
from repro.core.timeseries import (
    WindowedScores,
    windowed_from_flows,
    windowed_preference,
)
from repro.core.views import Direction, DirectionalView
from repro.errors import AnalysisError


def make_view(n, nbytes=1000):
    return DirectionalView(
        direction=Direction.DOWNLOAD,
        probe_ip=np.zeros(n, dtype=np.uint32),
        peer_ip=np.arange(n, dtype=np.uint32) + 1,
        bytes=np.full(n, nbytes, dtype=np.uint64),
        min_ipg=np.full(n, np.inf),
        ttl=np.full(n, 120.0),
    )


class TestWindowedPreference:
    def test_single_window_matches_aggregate(self):
        view = make_view(4)
        ind = np.array([True, True, False, False])
        scores = windowed_preference(
            view, ind,
            first_ts=np.zeros(4), last_ts=np.full(4, 9.0),
            window_s=10.0, t_end=10.0,
        )
        assert len(scores) == 1
        assert scores.peer_percent[0] == pytest.approx(50.0)
        assert scores.byte_percent[0] == pytest.approx(50.0)

    def test_flow_present_in_overlapped_windows_only(self):
        view = make_view(1)
        ind = np.array([True])
        scores = windowed_preference(
            view, ind,
            first_ts=np.array([12.0]), last_ts=np.array([18.0]),
            window_s=10.0, t_end=30.0,
        )
        assert np.isnan(scores.peer_percent[0])
        assert scores.peer_percent[1] == 100.0
        assert np.isnan(scores.peer_percent[2])

    def test_bytes_apportioned_by_overlap(self):
        # One preferred flow spanning two windows evenly, one other flow
        # only in the first window.
        view = make_view(2, nbytes=1000)
        ind = np.array([True, False])
        scores = windowed_preference(
            view, ind,
            first_ts=np.array([5.0, 0.0]), last_ts=np.array([15.0, 9.0]),
            window_s=10.0, t_end=20.0,
        )
        # Window 0: preferred flow contributes half its bytes (500) vs
        # other flow's full 1000.
        assert scores.byte_percent[0] == pytest.approx(100 * 500 / 1500)
        # Window 1: only the preferred flow is active.
        assert scores.byte_percent[1] == pytest.approx(100.0)

    def test_point_flows_counted_once(self):
        view = make_view(1)
        ind = np.array([True])
        scores = windowed_preference(
            view, ind,
            first_ts=np.array([5.0]), last_ts=np.array([5.0]),
            window_s=10.0, t_end=20.0,
        )
        assert scores.peer_percent[0] == 100.0
        assert np.isnan(scores.peer_percent[1])

    def test_invalid_inputs(self):
        view = make_view(1)
        with pytest.raises(AnalysisError):
            windowed_preference(
                view, np.array([True]),
                np.zeros(1), np.ones(1), window_s=0.0, t_end=10.0,
            )
        with pytest.raises(AnalysisError):
            windowed_preference(
                view, np.array([True, False]),
                np.zeros(1), np.ones(1), window_s=1.0, t_end=10.0,
            )


class TestStabilisation:
    def test_detects_settled_series(self):
        scores = WindowedScores(
            window_s=10.0,
            starts=np.arange(5) * 10.0,
            peer_percent=np.full(5, 50.0),
            byte_percent=np.array([20.0, 80.0, 95.0, 96.0, 97.0]),
        )
        assert scores.stabilisation_window(tolerance=5.0) == 2

    def test_unstable_series(self):
        scores = WindowedScores(
            window_s=10.0,
            starts=np.arange(4) * 10.0,
            peer_percent=np.full(4, 50.0),
            byte_percent=np.array([10.0, 90.0, 10.0, 90.0]),
        )
        assert scores.stabilisation_window(tolerance=5.0) == 3  # only last

    def test_all_nan(self):
        scores = WindowedScores(
            window_s=10.0,
            starts=np.arange(2) * 10.0,
            peer_percent=np.full(2, np.nan),
            byte_percent=np.full(2, np.nan),
        )
        assert scores.stabilisation_window() is None


class TestOnSimulation:
    def test_bw_preference_stable_over_windows(self, flows_small, sim_small):
        scores = windowed_from_flows(
            flows_small,
            BWPartition(),
            window_s=15.0,
            t_end=sim_small.duration_s,
        )
        finite = scores.byte_percent[np.isfinite(scores.byte_percent)]
        assert len(finite) >= 3
        # Bandwidth preference is strong in every window, not an artifact
        # of aggregation.
        assert np.all(finite > 85)

    def test_windows_converge_to_aggregate(self, flows_small, sim_small, report_small):
        scores = windowed_from_flows(
            flows_small,
            BWPartition(),
            window_s=20.0,
            t_end=sim_small.duration_s,
        )
        finite = scores.byte_percent[np.isfinite(scores.byte_percent)]
        aggregate = report_small["BW"].download.B
        assert abs(np.mean(finite) - aggregate) < 10

    def test_unknown_direction_rejected(self, flows_small, registry_small):
        with pytest.raises(AnalysisError):
            windowed_from_flows(
                flows_small, ASPartition(registry_small),
                window_s=10.0, t_end=60.0, direction="sideways",
            )

    def test_upload_direction(self, flows_small, registry_small, sim_small):
        scores = windowed_from_flows(
            flows_small, ASPartition(registry_small),
            window_s=20.0, t_end=sim_small.duration_s, direction="upload",
        )
        assert len(scores) == 3
