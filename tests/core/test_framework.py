"""The full analyzer."""

import math

import pytest

from repro.core.framework import AwarenessAnalyzer, DirectionScores
from repro.core.partitions import ASPartition, BWPartition
from repro.core.preference import PreferenceCounts
from repro.errors import AnalysisError


class TestAnalyzer:
    def test_default_metrics(self, report_small):
        assert report_small.metric_names == ["BW", "AS", "CC", "NET", "HOP"]

    def test_unknown_metric_raises(self, report_small):
        with pytest.raises(AnalysisError):
            report_small["RTT"]

    def test_bw_upload_unmeasurable(self, report_small):
        scores = report_small["BW"].upload
        assert math.isnan(scores.P) and math.isnan(scores.B)

    def test_all_percentages_bounded(self, report_small):
        for metric in report_small.metric_names:
            for scores in (report_small[metric].download, report_small[metric].upload):
                for value in (scores.P, scores.B, scores.P_prime, scores.B_prime):
                    assert math.isnan(value) or 0 <= value <= 100

    def test_net_prime_empty(self, report_small):
        # No non-probe peer shares a probe subnet by construction.
        net = report_small["NET"].download
        assert net.non_probe.peers_preferred == 0

    def test_self_bias_populated(self, report_small):
        for key in ("download", "upload"):
            assert key in report_small.self_bias_contributors
            assert key in report_small.self_bias_all_peers

    def test_contributor_bias_exceeds_allpeer_bias(self, report_small):
        c = report_small.self_bias_contributors["download"]
        a = report_small.self_bias_all_peers["download"]
        assert c.peer_percent > a.peer_percent

    def test_custom_partitions(self, flows_small, registry_small):
        analyzer = AwarenessAnalyzer(
            registry_small, partitions=[BWPartition(), ASPartition(registry_small)]
        )
        report = analyzer.analyze(flows_small)
        assert report.metric_names == ["BW", "AS"]

    def test_duplicate_partition_names_rejected(self, registry_small):
        with pytest.raises(AnalysisError):
            AwarenessAnalyzer(
                registry_small, partitions=[BWPartition(), BWPartition()]
            )

    def test_empty_partitions_rejected(self, registry_small):
        with pytest.raises(AnalysisError):
            AwarenessAnalyzer(registry_small, partitions=[])

    def test_deterministic(self, flows_small, registry_small):
        a = AwarenessAnalyzer(registry_small).analyze(flows_small)
        b = AwarenessAnalyzer(registry_small).analyze(flows_small)
        for metric in a.metric_names:
            assert a[metric].download.B == b[metric].download.B
            pa, pb = a[metric].upload.P, b[metric].upload.P
            assert pa == pb or (math.isnan(pa) and math.isnan(pb))


class TestDirectionScores:
    def test_nan_on_missing(self):
        s = DirectionScores(None, None)
        assert math.isnan(s.P) and math.isnan(s.B_prime)

    def test_passthrough(self):
        counts = PreferenceCounts(1, 3, 100, 300)
        s = DirectionScores(counts, None)
        assert s.P == 25.0 and s.B == 25.0


class TestSemanticConsistency:
    """Cross-checks between the report and raw recomputation."""

    def test_bw_matches_manual_computation(self, report_small, flows_small):
        from repro.core.views import build_views
        from repro.heuristics.bandwidth import classify_high_bandwidth

        views = build_views(flows_small)
        view = views.download
        ind = classify_high_bandwidth(view.min_ipg)
        manual_b = 100.0 * view.bytes[ind].sum() / view.bytes.sum()
        assert report_small["BW"].download.B == pytest.approx(manual_b)

    def test_primed_leq_information(self, report_small, flows_small):
        # Excluding probes removes rows; the primed totals must be smaller.
        for metric in report_small.metric_names:
            scores = report_small[metric].download
            if scores.all_peers and scores.non_probe:
                assert scores.non_probe.total_peers <= scores.all_peers.total_peers
