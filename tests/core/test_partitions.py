"""Preferential partitions — axioms and semantics."""

import numpy as np
import pytest

from repro.core.partitions import (
    ASPartition,
    BWPartition,
    CCPartition,
    HOPPartition,
    NETPartition,
    PAPER_HOP_THRESHOLD,
    SubnetPartition,
    default_partitions,
)
from repro.core.views import Direction, DirectionalView, build_views
from repro.errors import AnalysisError


@pytest.fixture(scope="module")
def views(flows_small):
    return build_views(flows_small)


class TestAxioms:
    """X_P and its complement partition the support: the indicator is a
    total boolean function — every pair lands in exactly one class."""

    def test_every_partition_total(self, views, registry_small):
        for partition in default_partitions(registry_small):
            for direction in Direction:
                if not partition.supports(direction):
                    continue
                view = views.get(direction)
                ind = partition.indicator(view)
                assert ind.dtype == bool
                assert len(ind) == len(view)

    def test_indicator_deterministic(self, views, registry_small):
        for partition in default_partitions(registry_small):
            a = partition.indicator(views.download)
            b = partition.indicator(views.download)
            assert np.array_equal(a, b)


class TestBW:
    def test_threshold_semantics(self, views):
        ind = BWPartition().indicator(views.download)
        assert np.array_equal(ind, views.download.min_ipg < 1e-3)

    def test_download_only(self):
        p = BWPartition()
        assert p.supports(Direction.DOWNLOAD)
        assert not p.supports(Direction.UPLOAD)

    def test_invalid_threshold(self):
        with pytest.raises(AnalysisError):
            BWPartition(ipg_threshold_s=0)

    def test_matches_ground_truth(self, views, sim_small):
        view = views.download
        trained = view.min_ipg < np.inf
        ind = BWPartition().indicator(view)
        truth = sim_small.hosts.gather(view.peer_ip, "highbw")
        assert np.array_equal(ind[trained], truth[trained])


class TestASCC:
    def test_as_semantics(self, views, registry_small, sim_small):
        ind = ASPartition(registry_small).indicator(views.download)
        truth = sim_small.hosts.gather(
            views.download.peer_ip, "asn"
        ) == sim_small.hosts.gather(views.download.probe_ip, "asn")
        assert np.array_equal(ind, truth)

    def test_cc_semantics(self, views, registry_small, sim_small):
        ind = CCPartition(registry_small).indicator(views.download)
        truth = sim_small.hosts.gather(
            views.download.peer_ip, "cc"
        ) == sim_small.hosts.gather(views.download.probe_ip, "cc")
        assert np.array_equal(ind, truth)

    def test_as_implies_cc(self, views, registry_small):
        as_ind = ASPartition(registry_small).indicator(views.download)
        cc_ind = CCPartition(registry_small).indicator(views.download)
        assert np.all(cc_ind[as_ind])


class TestNET:
    def test_net_is_zero_hop(self, views, sim_small):
        ind = NETPartition().indicator(views.download)
        same_subnet = sim_small.hosts.gather(
            views.download.peer_ip, "subnet"
        ) == sim_small.hosts.gather(views.download.probe_ip, "subnet")
        assert np.array_equal(ind, same_subnet)

    def test_net_implies_as(self, views, registry_small):
        net = NETPartition().indicator(views.download)
        as_ = ASPartition(registry_small).indicator(views.download)
        assert np.all(as_[net])

    def test_nan_ttl_conservative(self):
        view = DirectionalView(
            direction=Direction.UPLOAD,
            probe_ip=np.zeros(2, dtype=np.uint32),
            peer_ip=np.ones(2, dtype=np.uint32),
            bytes=np.ones(2, dtype=np.uint64),
            min_ipg=np.full(2, np.inf),
            ttl=np.array([np.nan, 128.0]),
        )
        ind = NETPartition().indicator(view)
        assert ind.tolist() == [False, True]

    def test_subnet_partition_cross_validates_ttl_path(self, views, registry_small):
        # The registry-based SUBNET partition and the TTL-based NET
        # partition must agree on the download side.
        net = NETPartition().indicator(views.download)
        sub = SubnetPartition(registry_small).indicator(views.download)
        assert np.array_equal(net, sub)


class TestHOP:
    def test_threshold_semantics(self, views):
        from repro.heuristics.hops import hops_from_ttl

        part = HOPPartition(threshold=10)
        ind = part.indicator(views.download)
        hops = hops_from_ttl(views.download.ttl.astype(np.int64))
        assert np.array_equal(ind, hops < 10)

    def test_paper_default(self):
        assert HOPPartition().threshold == PAPER_HOP_THRESHOLD == 19

    def test_median_auto_threshold_splits_population(self, views):
        part = HOPPartition(threshold=None)
        view = views.download
        median = part.observed_median(view)
        ind = part.indicator(view)
        # Roughly half below the median (ties allowed on one side).
        assert 0.2 < ind.mean() < 0.8
        assert median > 0

    def test_median_requires_observations(self):
        view = DirectionalView(
            direction=Direction.UPLOAD,
            probe_ip=np.zeros(1, dtype=np.uint32),
            peer_ip=np.ones(1, dtype=np.uint32),
            bytes=np.ones(1, dtype=np.uint64),
            min_ipg=np.full(1, np.inf),
            ttl=np.array([np.nan]),
        )
        with pytest.raises(AnalysisError):
            HOPPartition(threshold=None).observed_median(view)

    def test_unseen_ttl_not_near(self):
        view = DirectionalView(
            direction=Direction.UPLOAD,
            probe_ip=np.zeros(1, dtype=np.uint32),
            peer_ip=np.ones(1, dtype=np.uint32),
            bytes=np.ones(1, dtype=np.uint64),
            min_ipg=np.full(1, np.inf),
            ttl=np.array([np.nan]),
        )
        assert not HOPPartition(threshold=19).indicator(view)[0]


class TestDefaults:
    def test_paper_five(self, registry_small):
        names = [p.name for p in default_partitions(registry_small)]
        assert names == ["BW", "AS", "CC", "NET", "HOP"]
