"""Run the doctest examples embedded in the repro.core public API.

The docstrings of the core framework carry executable examples keyed to
the paper's equations (eqs. 1–8); CI also runs them directly via
``pytest --doctest-modules src/repro/core``, but folding them into the
tier-1 suite keeps them green for plain ``pytest`` runs too.
"""

import doctest

import pytest

import repro.core.bias
import repro.core.partitions
import repro.core.preference
import repro.core.views

CORE_MODULES = [
    repro.core.bias,
    repro.core.partitions,
    repro.core.preference,
    repro.core.views,
]


@pytest.mark.parametrize("module", CORE_MODULES, ids=lambda m: m.__name__)
def test_core_doctests(module):
    result = doctest.testmod(module)
    assert result.failed == 0
    tried = result.attempted
    # Modules listed here are expected to actually carry examples —
    # a zero-test module means a doctest was deleted without updating
    # this list (views has none yet; it rides along for future examples).
    if module is not repro.core.views:
        assert tried > 0
