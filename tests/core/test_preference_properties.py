"""Property-based tests for the metric core (eqs. 1-8 of the paper).

Invariants that must hold for *any* contributor view, not just the ones
the simulator happens to produce:

* P, B, P', B' are percentages — in [0, 100] or NaN (empty partition);
* the indices do not depend on row order (flow-table permutation);
* the indices do not depend on peer identity, only on which partition a
  peer falls into (bijective IP relabeling);
* B' is computed on the NAPA-deprived contributor set P' = P \\ W,
  exactly the rows whose peer is not a probe.

Runs under hypothesis when available, otherwise over a seeded random
corpus — same properties either way.
"""

import math

import numpy as np
import pytest

from repro.core.bias import exclude_probe_peers, self_bias
from repro.core.preference import per_probe_counts, preference_counts
from repro.core.views import Direction, DirectionalView

try:
    from hypothesis import given, settings
    from hypothesis import strategies as st

    HAVE_HYPOTHESIS = True
except ImportError:  # pragma: no cover - exercised only without hypothesis
    HAVE_HYPOTHESIS = False


def make_view(rng: np.random.Generator, n: int) -> DirectionalView:
    """A random but well-formed directional view with n rows."""
    return DirectionalView(
        direction=Direction.DOWNLOAD,
        probe_ip=rng.integers(1, 50, size=n).astype(np.uint32),
        peer_ip=rng.integers(1, 200, size=n).astype(np.uint32),
        bytes=rng.integers(0, 10**7, size=n).astype(np.uint64),
        min_ipg=rng.uniform(1e-6, 1.0, size=n),
        ttl=rng.integers(1, 64, size=n).astype(np.float64),
    )


def assert_percent_or_nan(value: float) -> None:
    assert math.isnan(value) or 0.0 <= value <= 100.0


def check_bounds(view: DirectionalView, indicator: np.ndarray) -> None:
    counts = preference_counts(view, indicator)
    assert_percent_or_nan(counts.peer_percent)
    assert_percent_or_nan(counts.byte_percent)
    # Complement partitions sum to 100 (when measurable).
    flipped = preference_counts(view, ~indicator)
    if not math.isnan(counts.peer_percent):
        assert counts.peer_percent + flipped.peer_percent == pytest.approx(100.0)
    if not math.isnan(counts.byte_percent):
        assert counts.byte_percent + flipped.byte_percent == pytest.approx(100.0)


def check_permutation_invariance(
    view: DirectionalView, indicator: np.ndarray, rng: np.random.Generator
) -> None:
    perm = rng.permutation(len(view))
    shuffled = view.select(perm)
    assert preference_counts(view, indicator) == preference_counts(
        shuffled, indicator[perm]
    )


def check_relabel_invariance(
    view: DirectionalView, indicator: np.ndarray, rng: np.random.Generator
) -> None:
    """A bijective renaming of peer addresses changes nothing: the
    indices see only the partition indicator and the byte column."""
    old = np.unique(view.peer_ip)
    new = (rng.permutation(len(old)).astype(np.uint32) + np.uint32(1_000_000))
    mapping = dict(zip(old.tolist(), new.tolist()))
    relabeled = DirectionalView(
        direction=view.direction,
        probe_ip=view.probe_ip,
        peer_ip=np.array(
            [mapping[p] for p in view.peer_ip.tolist()], dtype=np.uint32
        ),
        bytes=view.bytes,
        min_ipg=view.min_ipg,
        ttl=view.ttl,
    )
    assert preference_counts(view, indicator) == preference_counts(
        relabeled, indicator
    )


def check_primed_on_deprived_set(
    view: DirectionalView, indicator: np.ndarray, probe_ips: np.ndarray
) -> None:
    """B'/P' equal the plain indices over exactly the non-probe rows."""
    keep = ~np.isin(view.peer_ip, probe_ips)
    pruned = exclude_probe_peers(view, probe_ips)
    assert len(pruned) == int(keep.sum())
    assert not np.isin(pruned.peer_ip, probe_ips).any()
    primed = preference_counts(pruned, indicator[keep])
    manual = preference_counts(view.select(keep), indicator[keep])
    assert primed == manual
    assert_percent_or_nan(primed.peer_percent)
    assert_percent_or_nan(primed.byte_percent)
    # Byte conservation: the pruned view dropped exactly the probe bytes.
    probe_bytes = int(view.bytes[~keep].sum())
    assert pruned.total_bytes == view.total_bytes - probe_bytes


def check_per_probe_aggregation(
    view: DirectionalView, indicator: np.ndarray
) -> None:
    """Summing eqs. (1)-(4) across probes gives eqs. (5)-(6)."""
    total = preference_counts(view, indicator)
    parts = per_probe_counts(view, indicator).values()
    assert sum(c.peers_preferred for c in parts) == total.peers_preferred
    assert sum(c.peers_other for c in parts) == total.peers_other
    assert sum(c.bytes_preferred for c in parts) == total.bytes_preferred
    assert sum(c.bytes_other for c in parts) == total.bytes_other


def check_self_bias_bounds(
    view: DirectionalView, probe_ips: np.ndarray
) -> None:
    bias = self_bias(view, probe_ips)
    assert_percent_or_nan(bias.peer_percent)
    assert_percent_or_nan(bias.byte_percent)


def run_all_properties(seed: int, n: int) -> None:
    rng = np.random.default_rng(seed)
    view = make_view(rng, n)
    indicator = rng.random(n) < rng.uniform(0.0, 1.0)
    probe_ips = np.unique(
        rng.choice(view.peer_ip, size=max(1, n // 4))
        if n
        else np.array([1], dtype=np.uint32)
    ).astype(np.uint32)
    check_bounds(view, indicator)
    check_per_probe_aggregation(view, indicator)
    check_self_bias_bounds(view, probe_ips)
    check_primed_on_deprived_set(view, indicator, probe_ips)
    if n:
        check_permutation_invariance(view, indicator, rng)
        check_relabel_invariance(view, indicator, rng)


if HAVE_HYPOTHESIS:

    @given(seed=st.integers(0, 2**32 - 1), n=st.integers(0, 400))
    @settings(max_examples=60, deadline=None)
    def test_metric_core_properties(seed, n):
        run_all_properties(seed, n)

else:  # pragma: no cover - seeded fallback without hypothesis

    @pytest.mark.parametrize("seed", range(30))
    def test_metric_core_properties(seed):
        run_all_properties(seed, n=int(np.random.default_rng(seed).integers(0, 400)))


class TestEdgeCases:
    def test_empty_view_is_nan(self):
        view = make_view(np.random.default_rng(0), 0)
        counts = preference_counts(view, np.zeros(0, dtype=bool))
        assert math.isnan(counts.peer_percent)
        assert math.isnan(counts.byte_percent)

    def test_zero_bytes_is_nan_bytes_but_finite_peers(self):
        rng = np.random.default_rng(1)
        view = make_view(rng, 5)
        view = DirectionalView(
            direction=view.direction,
            probe_ip=view.probe_ip,
            peer_ip=view.peer_ip,
            bytes=np.zeros(5, dtype=np.uint64),
            min_ipg=view.min_ipg,
            ttl=view.ttl,
        )
        counts = preference_counts(view, np.ones(5, dtype=bool))
        assert counts.peer_percent == 100.0
        assert math.isnan(counts.byte_percent)

    def test_all_probe_peers_leaves_empty_deprived_set(self):
        rng = np.random.default_rng(2)
        view = make_view(rng, 8)
        pruned = exclude_probe_peers(view, np.unique(view.peer_ip))
        assert len(pruned) == 0
        counts = preference_counts(pruned, np.zeros(0, dtype=bool))
        assert math.isnan(counts.peer_percent)

    def test_large_bytes_do_not_overflow(self):
        # Two rows near the uint64 ceiling: sums go through Python ints.
        big = np.uint64(2**62)
        view = DirectionalView(
            direction=Direction.DOWNLOAD,
            probe_ip=np.array([1, 1], dtype=np.uint32),
            peer_ip=np.array([2, 3], dtype=np.uint32),
            bytes=np.array([big, big], dtype=np.uint64),
            min_ipg=np.array([0.1, 0.2]),
            ttl=np.array([10.0, 12.0]),
        )
        counts = preference_counts(view, np.array([True, False]))
        assert counts.byte_percent == pytest.approx(50.0)
