"""Self-bias quantification and probe exclusion."""

import numpy as np
import pytest

from repro.core.bias import exclude_probe_peers, self_bias
from repro.core.views import Direction, DirectionalView, build_views


def make_view(peer_ips, nbytes):
    n = len(peer_ips)
    return DirectionalView(
        direction=Direction.DOWNLOAD,
        probe_ip=np.zeros(n, dtype=np.uint32),
        peer_ip=np.asarray(peer_ips, dtype=np.uint32),
        bytes=np.asarray(nbytes, dtype=np.uint64),
        min_ipg=np.full(n, np.inf),
        ttl=np.full(n, 120.0),
    )


class TestExclusion:
    def test_removes_probe_peers_only(self):
        view = make_view([1, 2, 3, 4], [10, 20, 30, 40])
        pruned = exclude_probe_peers(view, np.array([2, 4], dtype=np.uint32))
        assert pruned.peer_ip.tolist() == [1, 3]
        assert pruned.bytes.tolist() == [10, 30]

    def test_idempotent(self):
        view = make_view([1, 2, 3], [1, 1, 1])
        probes = np.array([2], dtype=np.uint32)
        once = exclude_probe_peers(view, probes)
        twice = exclude_probe_peers(once, probes)
        assert np.array_equal(once.peer_ip, twice.peer_ip)

    def test_no_probes_noop(self):
        view = make_view([1, 2], [1, 2])
        pruned = exclude_probe_peers(view, np.array([], dtype=np.uint32))
        assert len(pruned) == 2

    def test_simulation_views(self, flows_small):
        views = build_views(flows_small)
        probes = flows_small.probe_ips
        pruned = exclude_probe_peers(views.download, probes)
        assert not np.isin(pruned.peer_ip, probes).any()
        assert len(pruned) < len(views.download)


class TestSelfBias:
    def test_basic(self):
        view = make_view([1, 2, 3, 4], [10, 10, 10, 70])
        bias = self_bias(view, np.array([4], dtype=np.uint32))
        assert bias.peer_percent == pytest.approx(25.0)
        assert bias.byte_percent == pytest.approx(70.0)

    def test_empty_view_nan(self):
        bias = self_bias(make_view([], []), np.array([1], dtype=np.uint32))
        assert np.isnan(bias.peer_percent)

    def test_no_probe_peers_zero(self):
        bias = self_bias(make_view([1, 2], [5, 5]), np.array([9], dtype=np.uint32))
        assert bias.peer_percent == 0.0
        assert bias.byte_percent == 0.0

    def test_consistency_with_exclusion(self):
        view = make_view([1, 2, 3, 4], [10, 20, 30, 40])
        probes = np.array([1, 3], dtype=np.uint32)
        bias = self_bias(view, probes)
        pruned = exclude_probe_peers(view, probes)
        assert bias.byte_percent == pytest.approx(
            100 * (1 - pruned.bytes.sum() / view.bytes.sum())
        )
