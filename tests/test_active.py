"""Active probing: ping / traceroute over the synthetic Internet."""

import numpy as np
import pytest

from repro.active import ActiveProber
from repro.errors import ConfigurationError
from repro.topology.access import dsl
from repro.topology.testbed import build_napa_wine_testbed
from repro.topology.world import World


@pytest.fixture(scope="module")
def setup():
    world = World()
    testbed = build_napa_wine_testbed(world)
    cn = world.access_isps("CN")[0]
    remote = world.new_endpoint(cn, dsl(4, 0.5))
    return world, testbed, remote


class TestPing:
    def test_stats_ordered(self, setup):
        world, tb, remote = setup
        prober = ActiveProber(world, tb.host("PoliTO-1").endpoint, seed=1)
        res = prober.ping(remote, count=20)
        assert res.received == 20
        assert res.rtt_min_s <= res.rtt_avg_s <= res.rtt_max_s

    def test_min_approaches_true_rtt(self, setup):
        world, tb, remote = setup
        src = tb.host("PoliTO-1").endpoint
        prober = ActiveProber(world, src, seed=2, jitter_scale_s=0.001)
        res = prober.ping(remote, count=200)
        truth = prober.true_rtt(remote)
        assert res.rtt_min_s >= truth
        assert res.rtt_min_s - truth < 0.002

    def test_nearby_faster_than_far(self, setup):
        world, tb, remote = setup
        src = tb.host("PoliTO-1").endpoint
        prober = ActiveProber(world, src, seed=3)
        near = prober.ping(tb.host("UniTN-1").endpoint, count=50)
        far = prober.ping(remote, count=50)
        assert near.rtt_min_s < far.rtt_min_s

    def test_loss(self, setup):
        world, tb, remote = setup
        prober = ActiveProber(world, tb.host("BME-1").endpoint, seed=4, loss_prob=0.5)
        res = prober.ping(remote, count=400)
        assert 0.35 < res.loss_rate < 0.65

    def test_total_loss_gives_nan(self, setup):
        world, tb, remote = setup
        prober = ActiveProber(world, tb.host("BME-1").endpoint, seed=5, loss_prob=0.999999)
        res = prober.ping(remote, count=5)
        assert res.received in (0, 1)  # overwhelmingly lost

    def test_invalid_params(self, setup):
        world, tb, remote = setup
        with pytest.raises(ConfigurationError):
            ActiveProber(world, tb.host("BME-1").endpoint, loss_prob=1.0)
        prober = ActiveProber(world, tb.host("BME-1").endpoint)
        with pytest.raises(ConfigurationError):
            prober.ping(remote, count=0)


class TestTraceroute:
    def test_length_equals_forward_hops(self, setup):
        world, tb, remote = setup
        src = tb.host("WUT-1").endpoint
        prober = ActiveProber(world, src, seed=6)
        trace = prober.traceroute(remote)
        assert len(trace) == world.paths.hops(src, remote)

    def test_ttls_consecutive(self, setup):
        world, tb, remote = setup
        prober = ActiveProber(world, tb.host("WUT-1").endpoint, seed=6)
        trace = prober.traceroute(remote)
        assert [h.ttl for h in trace] == list(range(1, len(trace) + 1))

    def test_rtts_monotone_on_average(self, setup):
        world, tb, remote = setup
        prober = ActiveProber(
            world, tb.host("WUT-1").endpoint, seed=6, jitter_scale_s=1e-6
        )
        trace = prober.traceroute(remote)
        rtts = [h.rtt_s for h in trace]
        assert rtts == sorted(rtts)

    def test_same_subnet_empty(self, setup):
        world, tb, _ = setup
        prober = ActiveProber(world, tb.host("PoliTO-1").endpoint, seed=7)
        assert prober.traceroute(tb.host("PoliTO-2").endpoint) == []

    def test_as_path_endpoints(self, setup):
        world, tb, remote = setup
        src = tb.host("ENST-1").endpoint
        prober = ActiveProber(world, src, seed=8)
        as_path = prober.as_path_of(remote)
        assert as_path[0] == src.asn
        assert as_path[-1] == remote.asn

    def test_as_path_matches_graph_route(self, setup):
        world, tb, remote = setup
        src = tb.host("ENST-1").endpoint
        prober = ActiveProber(world, src, seed=8)
        observed = prober.as_path_of(remote)
        expected = world.asgraph.as_path(src.asn, remote.asn)
        assert observed == expected


class TestPassiveActiveCrossValidation:
    def test_ttl_hops_agree_with_traceroute(self, setup):
        """The paper's passive 128−TTL estimate equals what an active
        traceroute walks — the consistency the methodology relies on."""
        from repro.heuristics.hops import hops_from_ttl

        world, tb, remote = setup
        src = tb.host("MT-1").endpoint
        received_ttl = world.paths.ttl_at_receiver(remote, src)
        passive = int(hops_from_ttl(np.array([received_ttl]))[0])
        prober = ActiveProber(world, remote, seed=9)
        active = len(prober.traceroute(src))
        assert passive == active
