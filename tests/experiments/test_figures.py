"""Figure builders (1–2)."""

import math

import numpy as np
import pytest

from repro.experiments.figure1 import OTHER, build_figure1
from repro.experiments.figure2 import build_figure2


class TestFigure1:
    @pytest.fixture(scope="class")
    def f1(self, campaign_small):
        return build_figure1(campaign_small)

    def test_one_bar_group_per_app(self, f1):
        assert {b.app for b in f1.bars} == {"pplive", "sopcast", "tvants"}

    def test_shares_sum_to_100(self, f1):
        for bars in f1.bars:
            for shares in (bars.peers, bars.rx_bytes, bars.tx_bytes):
                assert sum(shares.values()) == pytest.approx(100.0, abs=0.1)

    def test_labels(self, f1):
        assert f1.labels == ("CN", "HU", "IT", "FR", "PL", OTHER)

    def test_china_dominates_peers(self, f1):
        for bars in f1.bars:
            assert bars.peers["CN"] > 40

    def test_european_bytes_exceed_peer_share(self, f1):
        # The locality bias: EU countries' byte share > their peer share
        # for the AS-aware apps (hinting Fig. 1's message).
        bars = f1.bar("tvants")
        eu_peer = sum(bars.peers[c] for c in ("HU", "IT", "FR", "PL"))
        eu_rx = sum(bars.rx_bytes[c] for c in ("HU", "IT", "FR", "PL"))
        assert eu_rx > eu_peer

    def test_total_peer_ordering(self, f1):
        assert (
            f1.bar("pplive").total_peers
            > f1.bar("sopcast").total_peers
            > f1.bar("tvants").total_peers
        )

    def test_unknown_app(self, f1):
        with pytest.raises(KeyError):
            f1.bar("uusee")


class TestFigure2:
    @pytest.fixture(scope="class")
    def f2(self, campaign_small):
        return build_figure2(campaign_small)

    def test_one_matrix_per_app(self, f2):
        assert {m.app for m in f2.matrices} == {"pplive", "sopcast", "tvants"}

    def test_as_numbers_are_campus(self, f2):
        for m in f2.matrices:
            assert set(m.as_numbers) <= {1, 2, 3, 4, 5, 6}

    def test_matrix_nonnegative(self, f2):
        for m in f2.matrices:
            assert np.all(m.mean_bytes >= 0)
            assert np.all(m.mean_bytes_local >= 0)
            assert np.all(m.mean_bytes_local <= m.mean_bytes + 1e-9)

    def test_ratio_ordering(self, f2):
        r = {m.app: m.ratio_intra_inter for m in f2.matrices}
        assert r["tvants"] > r["sopcast"]

    def test_local_share_bounded(self, f2):
        for m in f2.matrices:
            s = m.local_share_intra
            assert math.isnan(s) or 0 <= s <= 1.0 + 1e-9

    def test_unknown_app(self, f2):
        with pytest.raises(KeyError):
            f2.matrix("uusee")
