"""Determinism of sharded campaign execution.

The contract of :mod:`repro.exec`: for the same configuration, the
``serial`` and ``process`` backends produce *identical* campaigns —
transfer logs, analysis reports, error ledgers, impairment logs — no
matter how shards were scheduled.  These tests are the regression net
under every future executor change: anything that reorders work in a way
that shifts numbers fails here first.
"""

import numpy as np
import pytest

import repro.experiments.campaign as campaign_mod
from repro.errors import ConfigurationError, SimulationError
from repro.exec.backends import (
    ENV_BACKEND,
    ENV_WORKERS,
    ProcessExecutor,
    SerialExecutor,
    resolve_executor,
)
from repro.exec.shards import ShardKey
from repro.experiments.campaign import CampaignConfig, run_campaign
from repro.experiments.multirun import render_replicated_table4, run_replicated_campaign
from repro.experiments.robustness import sweep_robustness
from repro.faults.plan import ImpairmentPlan
from repro.report.tables import render_table4
from repro.experiments.table4 import build_table4

SMALL = dict(duration_s=20.0, seed=3, scale=0.4)
TWO_APPS = ("pplive", "tvants")


def assert_campaigns_identical(a, b):
    """Byte-level equality of everything a campaign reports."""
    assert a.config == b.config
    assert list(a.runs) == list(b.runs)
    for app in a.runs:
        ra, rb = a[app], b[app]
        assert np.array_equal(ra.result.transfers, rb.result.transfers)
        assert np.array_equal(ra.result.signaling, rb.result.signaling)
        assert ra.from_checkpoint == rb.from_checkpoint
        assert int(ra.result.config.seed) == int(rb.result.config.seed)
    assert render_table4(build_table4(a)) == render_table4(build_table4(b))
    assert a.failures == b.failures
    assert a.impairment_logs == b.impairment_logs


class TestSerialProcessParity:
    def test_plain_campaign(self):
        cfg = CampaignConfig(apps=TWO_APPS, **SMALL)
        serial = run_campaign(cfg, backend="serial")
        process = run_campaign(cfg, backend="process", workers=2)
        assert serial.ok and process.ok
        assert_campaigns_identical(serial, process)

    def test_impaired_campaign(self):
        plan = ImpairmentPlan.preset(0.6, seed=5, duration_s=SMALL["duration_s"])
        cfg = CampaignConfig(apps=TWO_APPS, impairment=plan, **SMALL)
        serial = run_campaign(cfg, backend="serial")
        process = run_campaign(cfg, backend="process", workers=2)
        assert serial.ok and process.ok
        # Impairment actually did something, and did the same thing.
        assert serial.impairment_logs and process.impairment_logs
        for app in TWO_APPS:
            assert serial.impairment_logs[app].bad_time_fraction > 0.0
        assert_campaigns_identical(serial, process)

    def test_single_worker_process_pool(self):
        cfg = CampaignConfig(apps=("tvants",), **SMALL)
        serial = run_campaign(cfg, backend="serial")
        process = run_campaign(cfg, backend="process", workers=1)
        assert_campaigns_identical(serial, process)

    def test_failure_ledger_parity(self):
        # An impossible checkpoint dir is trapped identically in both
        # backends (worker-side failures travel back picklable).
        cfg = CampaignConfig(
            apps=("tvants",),
            checkpoint_dir="/dev/null/not-a-directory",
            **SMALL,
        )
        serial = run_campaign(cfg, backend="serial")
        process = run_campaign(cfg, backend="process", workers=2)
        assert [f.stage for f in serial.failures] == ["checkpoint"]
        assert serial.failures == process.failures
        assert "tvants" in serial.runs and "tvants" in process.runs

    def test_checkpoint_roundtrip_parity(self, tmp_path):
        serial_dir, process_dir = tmp_path / "s", tmp_path / "p"
        cfg_s = CampaignConfig(apps=("tvants",), checkpoint_dir=str(serial_dir), **SMALL)
        cfg_p = CampaignConfig(apps=("tvants",), checkpoint_dir=str(process_dir), **SMALL)
        run_campaign(cfg_s, backend="serial")
        run_campaign(cfg_p, backend="process", workers=2)
        # Both wrote a checkpoint; resuming across backends is symmetric:
        # the serial run resumes from the process-written bundle.
        resumed = run_campaign(
            CampaignConfig(apps=("tvants",), checkpoint_dir=str(process_dir), **SMALL),
            backend="serial",
        )
        fresh = run_campaign(cfg_s, backend="serial")
        assert resumed["tvants"].from_checkpoint
        assert np.array_equal(
            resumed["tvants"].result.transfers, fresh["tvants"].result.transfers
        )


class TestReplicatedParity:
    def test_multirun_table_identical(self):
        base = CampaignConfig(apps=TWO_APPS, **SMALL)
        serial = run_replicated_campaign(
            base, seeds=[7, 8], with_checks=False, backend="serial"
        )
        process = run_replicated_campaign(
            base, seeds=[7, 8], with_checks=False, backend="process", workers=2
        )
        assert render_replicated_table4(serial) == render_replicated_table4(process)


class TestRobustnessParity:
    def test_sweep_points_identical(self):
        kwargs = dict(severities=(0.0, 0.8), duration_s=20.0, seed=3, scale=0.4)
        serial = sweep_robustness("tvants", backend="serial", **kwargs)
        process = sweep_robustness("tvants", backend="process", workers=2, **kwargs)
        assert serial.points == process.points
        assert [p.severity for p in process.points] == [0.0, 0.8]


class TestSupervisedParity:
    """The supervised runtime is parity-bound too: with no faults the
    supervised pool (and inline supervision) must reproduce the serial
    campaign byte for byte — supervision may only *observe* clean runs."""

    @pytest.fixture(autouse=True)
    def _no_ambient_chaos(self, monkeypatch):
        monkeypatch.delenv("REPRO_CHAOS_PLAN", raising=False)

    def test_clean_supervised_pool_matches_serial(self):
        cfg = CampaignConfig(apps=TWO_APPS, **SMALL)
        serial = run_campaign(cfg, backend="serial")
        supervised = run_campaign(cfg, backend="supervised", workers=2)
        assert serial.ok and supervised.ok
        assert_campaigns_identical(serial, supervised)
        # Clean runs leave no degradation marks, only observations.
        assert supervised.flags == []
        assert {r["outcome"] for r in supervised.supervision.values()} == {"ok"}
        assert supervised.telemetry.counter("exec/retries") == 0

    def test_inline_supervision_matches_serial(self):
        from repro.exec.supervisor import SupervisionPolicy

        cfg = CampaignConfig(apps=("tvants",), **SMALL)
        serial = run_campaign(cfg, backend="serial")
        inline = run_campaign(cfg, backend="serial", policy=SupervisionPolicy())
        assert_campaigns_identical(serial, inline)
        assert inline.supervision["tvants"]["outcome"] == "ok"

    def test_impaired_supervised_matches_serial(self):
        plan = ImpairmentPlan.preset(0.6, seed=5, duration_s=SMALL["duration_s"])
        cfg = CampaignConfig(apps=TWO_APPS, impairment=plan, **SMALL)
        serial = run_campaign(cfg, backend="serial")
        supervised = run_campaign(cfg, backend="supervised", workers=2)
        assert_campaigns_identical(serial, supervised)

    def test_supervised_robustness_sweep_identical(self):
        kwargs = dict(severities=(0.0, 0.8), duration_s=20.0, seed=3, scale=0.4)
        serial = sweep_robustness("tvants", backend="serial", **kwargs)
        supervised = sweep_robustness("tvants", backend="supervised", workers=2, **kwargs)
        assert serial.points == supervised.points


class TestSchedulerPolicyParity:
    """Backend parity is policy-independent: serial ≡ process ≡ supervised
    for every chunk scheduler, and the policy travels with the config
    through shard specs, process boundaries and checkpoint bundles."""

    @pytest.fixture(autouse=True)
    def _clean_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_CHAOS_PLAN", raising=False)

    @pytest.mark.parametrize("scheduler", ("edf", "mesh-pull", "push", "rarest"))
    def test_serial_process_supervised_identical(self, scheduler):
        cfg = CampaignConfig(apps=("tvants",), scheduler=scheduler, **SMALL)
        serial = run_campaign(cfg, backend="serial")
        process = run_campaign(cfg, backend="process", workers=2)
        supervised = run_campaign(cfg, backend="supervised", workers=2)
        assert serial.ok and process.ok and supervised.ok
        assert serial["tvants"].result.profile.scheduler == scheduler
        assert_campaigns_identical(serial, process)
        assert_campaigns_identical(serial, supervised)

    def test_policies_actually_differ(self):
        mesh = run_campaign(
            CampaignConfig(apps=("tvants",), scheduler="mesh-pull", **SMALL),
            backend="serial",
        )
        rarest = run_campaign(
            CampaignConfig(apps=("tvants",), scheduler="rarest", **SMALL),
            backend="serial",
        )
        assert not np.array_equal(
            mesh["tvants"].result.transfers, rarest["tvants"].result.transfers
        )

    def test_checkpoint_scheduler_mismatch_falls_back_to_simulate(self, tmp_path):
        """A checkpoint written under one policy must not satisfy another:
        the stale bundle is rejected, logged, and the run re-simulated."""
        ck = str(tmp_path / "ck")
        mesh_cfg = CampaignConfig(
            apps=("tvants",), scheduler="mesh-pull", checkpoint_dir=ck, **SMALL
        )
        run_campaign(mesh_cfg, backend="serial")
        rarest_cfg = CampaignConfig(
            apps=("tvants",), scheduler="rarest", checkpoint_dir=ck, **SMALL
        )
        resumed = run_campaign(rarest_cfg, backend="serial")
        assert not resumed["tvants"].from_checkpoint
        assert [f.stage for f in resumed.failures] == ["checkpoint"]
        assert "scheduler" in resumed.failures[0].error
        fresh = run_campaign(
            CampaignConfig(apps=("tvants",), scheduler="rarest", **SMALL),
            backend="serial",
        )
        assert np.array_equal(
            resumed["tvants"].result.transfers, fresh["tvants"].result.transfers
        )


class TestShardKeys:
    def test_seed_discipline_matches_serial_runner(self):
        key = ShardKey(campaign_seed=42, app="sopcast", app_index=1)
        assert key.base_seed == 43
        assert key.seed_for(0) == 43
        assert key.seed_for(2) == 43 + 2 * campaign_mod.RESEED_STRIDE

    def test_keys_distinct_across_replicas(self):
        a = ShardKey(7, "tvants", 0, replica=0)
        b = ShardKey(7, "tvants", 0, replica=1)
        assert a != b and hash(a) != hash(b)


class TestExecutorResolution:
    @pytest.fixture(autouse=True)
    def _no_ambient_chaos(self, monkeypatch):
        # The CI chaos job exports REPRO_CHAOS_PLAN, which deliberately
        # upgrades process resolution to the supervised pool; these tests
        # pin down the *unsupervised* resolution rules.
        monkeypatch.delenv("REPRO_CHAOS_PLAN", raising=False)

    def test_default_is_serial(self, monkeypatch):
        monkeypatch.delenv(ENV_BACKEND, raising=False)
        monkeypatch.delenv(ENV_WORKERS, raising=False)
        assert isinstance(resolve_executor(), SerialExecutor)

    def test_workers_imply_process(self):
        executor = resolve_executor(None, 4)
        assert isinstance(executor, ProcessExecutor)
        assert executor.workers == 4

    def test_explicit_backend_wins_over_env(self, monkeypatch):
        monkeypatch.setenv(ENV_BACKEND, "process")
        assert isinstance(resolve_executor("serial"), SerialExecutor)

    def test_env_backend_and_workers(self, monkeypatch):
        monkeypatch.setenv(ENV_BACKEND, "process")
        monkeypatch.setenv(ENV_WORKERS, "3")
        executor = resolve_executor()
        assert isinstance(executor, ProcessExecutor)
        assert executor.workers == 3

    def test_unknown_backend_rejected(self):
        with pytest.raises(ConfigurationError):
            resolve_executor("threads")

    def test_bad_env_workers_rejected(self, monkeypatch):
        monkeypatch.setenv(ENV_WORKERS, "lots")
        with pytest.raises(ConfigurationError):
            resolve_executor("process")

    def test_zero_workers_rejected(self):
        with pytest.raises(ConfigurationError):
            ProcessExecutor(workers=0)


class TestMonkeypatchPropagation:
    def test_injected_fault_ledger_under_process_backend(self, monkeypatch):
        """Fork-started workers inherit test doubles installed on the
        campaign module, so failure injection reaches shards."""

        def always_fails(profile, **kwargs):
            raise SimulationError("injected fault")

        monkeypatch.setattr(campaign_mod, "simulate", always_fails)
        campaign = run_campaign(
            CampaignConfig(apps=("tvants",), **SMALL), backend="process", workers=2
        )
        assert campaign.failed_apps == ["tvants"]
        [failure] = campaign.failures
        assert failure.stage == "simulate"
        assert "injected fault" in failure.error
