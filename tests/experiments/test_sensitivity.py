"""Threshold sensitivity of the methodology."""

import pytest

from repro.errors import AnalysisError
from repro.experiments.sensitivity import (
    SensitivityReport,
    SweepPoint,
    render_sensitivity,
    sweep_sensitivity,
)


@pytest.fixture(scope="module")
def report(flows_small, registry_small):
    return sweep_sensitivity(flows_small, registry_small)


class TestSweep:
    def test_all_parameters_swept(self, report):
        assert set(report.parameters()) == {
            "contributor_volume",
            "contributor_mean_size",
            "ipg_threshold_ms",
            "hop_threshold",
        }

    def test_point_count(self, report):
        assert len(report.points) == 4 + 3 + 3 + 3

    def test_bw_finding_robust_to_contributor_thresholds(self, report):
        # The 96–98 % byte concentration must not hinge on the contributor
        # cut-offs: excursion under a 6× volume sweep stays small.
        assert report.excursion("bw_byte_pct", "contributor_volume") < 3.0

    def test_as_finding_robust(self, report):
        assert report.excursion("as_byte_pct_nonprobe", "contributor_volume") < 6.0

    def test_ipg_threshold_verdict_robust(self, report):
        # Halving the threshold to 0.5 ms (= 20 Mb/s) legitimately demotes
        # 20 Mb/s-uplink FTTH peers, so B moves a few points — but the
        # "strong bandwidth preference" verdict (B ≫ 50) never flips.
        bw_values = [
            p.bw_byte_pct for p in report.points
            if p.parameter == "ipg_threshold_ms"
        ]
        assert report.excursion("bw_byte_pct", "ipg_threshold_ms") < 15.0
        assert all(v > 85 for v in bw_values)

    def test_hop_threshold_moves_hop_only(self, report):
        # HOP's B' is a split of a tightly-clustered hop distribution, so
        # it swings with its own threshold — the very reason the paper's
        # verdict reads B' ≈ P' (both move together), not the absolute.
        assert report.excursion("hop_byte_pct_nonprobe", "hop_threshold") > 0.5
        # Sanity: more-permissive thresholds admit more near-bytes.
        hop_points = sorted(
            (p.value, p.hop_byte_pct_nonprobe)
            for p in report.points
            if p.parameter == "hop_threshold"
        )
        values = [v for _, v in hop_points]
        assert values == sorted(values)
        # ...and the other headline indices don't move at all.
        assert report.excursion("bw_byte_pct", "hop_threshold") < 0.5
        assert report.excursion("as_byte_pct_nonprobe", "hop_threshold") < 0.5

    def test_excursion_unknown_field_rejected(self, report):
        with pytest.raises(AnalysisError):
            report.excursion("bw_byte_pct", "nonexistent_param")


class TestRender:
    def test_render(self, report):
        out = render_sensitivity(report)
        assert "SENSITIVITY" in out
        assert "max excursions" in out
        assert "ipg_threshold_ms" in out

    def test_report_structure(self):
        point = SweepPoint("x", 1.0, 90.0, 5.0, 50.0)
        rep = SensitivityReport(points=[point])
        assert rep.excursion("bw_byte_pct") == 0.0
