"""Table builders (I–IV)."""

import math

import pytest

from repro.experiments.table1 import build_table1
from repro.experiments.table2 import build_table2
from repro.experiments.table3 import build_table3
from repro.experiments.table4 import build_table4


class TestTable1:
    def test_counts(self, testbed):
        t1 = build_table1(testbed)
        assert t1.total_hosts == 46
        assert t1.institution_hosts == 39
        assert t1.home_hosts == 7
        assert t1.countries == 4
        assert t1.campus_ases == 6
        assert t1.home_ases == 7

    def test_row_compression(self, testbed):
        t1 = build_table1(testbed)
        # BME appears as "1-4" + "5"; WUT as "1-8" + "9".
        bme = [r for r in t1.rows if r.site == "BME"]
        assert [r.hosts for r in bme] == ["1-4", "5"]
        wut = [r for r in t1.rows if r.site == "WUT"]
        assert [r.hosts for r in wut] == ["1-8", "9"]

    def test_home_rows_labelled_asx(self, testbed):
        t1 = build_table1(testbed)
        home = [r for r in t1.rows if r.access != "high-bw"]
        assert all(r.as_label == "ASx" for r in home)

    def test_polito_rows(self, testbed):
        t1 = build_table1(testbed)
        polito = [r for r in t1.rows if r.site == "PoliTO"]
        assert [r.hosts for r in polito] == ["1-9", "10", "11-12"]
        assert polito[2].nat


class TestTable2:
    @pytest.fixture(scope="class")
    def t2(self, campaign_small):
        return build_table2(campaign_small)

    def test_one_row_per_app(self, t2):
        assert {r.app for r in t2.rows} == {"pplive", "sopcast", "tvants"}

    def test_reach_ordering(self, t2):
        assert (
            t2.row("pplive").all_peers_mean
            > t2.row("sopcast").all_peers_mean
            > t2.row("tvants").all_peers_mean
        )

    def test_rx_rate_near_nominal(self, t2):
        for app in ("pplive", "sopcast", "tvants"):
            assert t2.row(app).rx_kbps_mean > 300

    def test_max_geq_mean(self, t2):
        for r in t2.rows:
            assert r.rx_kbps_max >= r.rx_kbps_mean
            assert r.all_peers_max >= r.all_peers_mean
            assert r.contrib_rx_max >= r.contrib_rx_mean

    def test_contributors_subset_of_peers(self, t2):
        for r in t2.rows:
            assert r.contrib_rx_mean <= r.all_peers_mean

    def test_unknown_app(self, t2):
        with pytest.raises(KeyError):
            t2.row("uusee")


class TestTable3:
    @pytest.fixture(scope="class")
    def t3(self, campaign_small):
        return build_table3(campaign_small)

    def test_percentages_bounded(self, t3):
        for r in t3.rows:
            for v in (r.contrib_peer_pct, r.contrib_byte_pct, r.all_peer_pct, r.all_byte_pct):
                assert math.isnan(v) or 0 <= v <= 100

    def test_self_bias_ordering(self, t3):
        assert (
            t3.row("tvants").contrib_byte_pct
            > t3.row("sopcast").contrib_byte_pct
            > t3.row("pplive").contrib_byte_pct
        )

    def test_contrib_peer_share_exceeds_all(self, t3):
        for r in t3.rows:
            assert r.contrib_peer_pct >= r.all_peer_pct


class TestTable4:
    @pytest.fixture(scope="class")
    def t4(self, campaign_small):
        return build_table4(campaign_small)

    def test_metric_order(self, t4):
        assert t4.metrics == ["BW", "AS", "CC", "NET", "HOP"]

    def test_full_grid(self, t4):
        # 5 metrics × 3 apps × 2 directions.
        assert len(t4.cells) == 30

    def test_cell_lookup(self, t4):
        cell = t4.cell("BW", "tvants", "download")
        assert cell.B > 90

    def test_bw_upload_is_dash(self, t4):
        cell = t4.cell("BW", "tvants", "upload")
        assert math.isnan(cell.B) and math.isnan(cell.P)

    def test_unknown_cell(self, t4):
        with pytest.raises(KeyError):
            t4.cell("RTT", "tvants", "download")

    def test_values_bounded(self, t4):
        for c in t4.cells:
            for v in (c.B, c.P, c.B_prime, c.P_prime):
                assert math.isnan(v) or 0 <= v <= 100
