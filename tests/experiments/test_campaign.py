"""Campaign runner."""

import pytest

from repro.errors import ConfigurationError
from repro.experiments.campaign import CampaignConfig, run_campaign


class TestConfig:
    def test_defaults(self):
        cfg = CampaignConfig()
        assert cfg.apps == ("pplive", "sopcast", "tvants")

    def test_empty_apps_rejected(self):
        with pytest.raises(ConfigurationError):
            CampaignConfig(apps=())

    def test_bad_duration_rejected(self):
        with pytest.raises(ConfigurationError):
            CampaignConfig(duration_s=0)

    def test_bad_scale_rejected(self):
        with pytest.raises(ConfigurationError):
            CampaignConfig(scale=-1)

    def test_unknown_engine_rejected(self):
        with pytest.raises(ConfigurationError):
            CampaignConfig(engine="aos")

    def test_engine_env_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_ENGINE", "soa")
        assert CampaignConfig().engine == "soa"
        monkeypatch.delenv("REPRO_ENGINE")
        assert CampaignConfig().engine == "object"


class TestRun:
    def test_runs_every_app(self, campaign_small):
        assert set(campaign_small.apps) == {"pplive", "sopcast", "tvants"}

    def test_shared_world_and_testbed(self, campaign_small):
        probe_ips = {
            app: set(run.result.probe_ips.tolist())
            for app, run in campaign_small.runs.items()
        }
        vals = list(probe_ips.values())
        assert vals[0] == vals[1] == vals[2]

    def test_runs_have_reports(self, campaign_small):
        for run in campaign_small.runs.values():
            assert run.report.metric_names == ["BW", "AS", "CC", "NET", "HOP"]

    def test_scale_applied(self, campaign_small):
        pp = campaign_small["pplive"].result.profile
        assert pp.swarm_size == 2000  # 4000 × 0.5

    def test_getitem(self, campaign_small):
        assert campaign_small["tvants"].app == "tvants"
        with pytest.raises(KeyError):
            campaign_small["uusee"]

    def test_single_app_campaign(self):
        campaign = run_campaign(
            CampaignConfig(apps=("tvants",), duration_s=20.0, seed=3, scale=0.5)
        )
        assert campaign.apps == ["tvants"]
