"""Flow-level statistics (the related-work [12] views)."""

import numpy as np
import pytest

from repro.errors import AnalysisError
from repro.experiments.flowstats import (
    build_flowstats,
    flow_scatter,
    render_flowstats,
    top_contributors,
)


class TestScatter:
    def test_scatter_columns_aligned(self, flows_small):
        s = flow_scatter(flows_small, "tvants")
        assert len(s.durations_s) == len(s.mean_packet_bytes) == len(flows_small)

    def test_two_clusters_exist(self, flows_small):
        # Video flows: near-MTU mean sizes; signaling flows: small.
        s = flow_scatter(flows_small)
        assert (s.mean_packet_bytes > 1000).any()
        assert (s.mean_packet_bytes < 300).any()

    def test_video_cluster_fraction(self, flows_small):
        s = flow_scatter(flows_small)
        frac = s.video_cluster_fraction()
        assert 0 < frac < 1

    def test_durations_nonnegative(self, flows_small):
        s = flow_scatter(flows_small)
        assert np.all(s.durations_s >= 0)

    def test_empty(self, flows_small):
        from repro.trace.flows import FlowTable
        from repro.trace.records import FLOW_DTYPE

        empty = FlowTable(np.empty(0, dtype=FLOW_DTYPE), flows_small.hosts)
        s = flow_scatter(empty)
        assert len(s) == 0
        assert np.isnan(s.video_cluster_fraction())


class TestTopContributors:
    def test_share_bounded(self, flows_small):
        t = top_contributors(flows_small, n=10)
        assert np.all((t.top_share_per_probe > 0) & (t.top_share_per_probe <= 1))

    def test_monotone_in_n(self, flows_small):
        t5 = top_contributors(flows_small, n=5)
        t20 = top_contributors(flows_small, n=20)
        assert t20.mean_share >= t5.mean_share

    def test_top_all_is_everything(self, flows_small):
        t = top_contributors(flows_small, n=10**6)
        assert t.mean_share == pytest.approx(1.0)

    def test_invalid_n(self, flows_small):
        with pytest.raises(AnalysisError):
            top_contributors(flows_small, n=0)


class TestCampaignReport:
    @pytest.fixture(scope="class")
    def report(self, campaign_small):
        return build_flowstats(campaign_small)

    def test_covers_all_apps(self, report):
        for app in ("pplive", "sopcast", "tvants"):
            assert report.scatter(app).app == app
            assert report.top(app).app == app

    def test_top10_concentration_is_high(self, report):
        # A handful of providers dominate each probe's download — the
        # observation [12] reports for all three systems.
        for app in ("pplive", "sopcast", "tvants"):
            assert report.top(app).mean_share > 0.4

    def test_unknown_app(self, report):
        with pytest.raises(KeyError):
            report.scatter("uusee")

    def test_render(self, report):
        out = render_flowstats(report)
        assert "FLOW STATS" in out
        assert "top-10" in out
