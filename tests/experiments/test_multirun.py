"""Replicated campaigns."""

import math

import pytest

from repro.errors import ConfigurationError
from repro.experiments.campaign import CampaignConfig
from repro.experiments.multirun import (
    render_replicated_table4,
    run_replicated_campaign,
)


@pytest.fixture(scope="module")
def replicated():
    return run_replicated_campaign(
        CampaignConfig(duration_s=45.0, scale=0.4),
        seeds=[7, 8],
    )


class TestRun:
    def test_replication_count(self, replicated):
        assert replicated.n_replications == 2
        assert replicated.seeds == [7, 8]

    def test_empty_seeds_rejected(self):
        with pytest.raises(ConfigurationError):
            run_replicated_campaign(seeds=[])

    def test_checks_recorded(self, replicated):
        assert len(replicated.check_runs) == 2
        assert len(replicated.check_runs[0]) == len(replicated.check_runs[1])


class TestAggregation:
    def test_cell_stats(self, replicated):
        stats = replicated.cell_stats("BW", "tvants", "download", "B")
        assert stats.n == 2
        assert 80 < stats.mean <= 100
        assert stats.std >= 0

    def test_nan_cells_stay_nan(self, replicated):
        stats = replicated.cell_stats("BW", "tvants", "upload", "B")
        assert math.isnan(stats.mean)
        assert stats.n == 0

    def test_variation_across_seeds(self, replicated):
        # Seeds differ, so at least some cell varies.
        varied = any(
            replicated.cell_stats("AS", app, "download", "B").std > 0
            for app in ("pplive", "sopcast", "tvants")
        )
        assert varied

    def test_pass_rates(self, replicated):
        rates = replicated.check_pass_rates()
        assert rates
        assert all(0.0 <= r <= 1.0 for r in rates.values())
        # The bulletproof claims pass in every replication even tiny.
        assert rates["T4/NET: no non-probe same-subnet peers exist (P' empty)"] == 1.0

    def test_bw_claim_robust_across_seeds(self, replicated):
        for seed_table in replicated.tables:
            for app in ("pplive", "sopcast", "tvants"):
                assert seed_table.cell("BW", app, "download").B > 85


class TestRender:
    def test_render(self, replicated):
        out = render_replicated_table4(replicated)
        assert "replications" in out
        assert "±" in out
        assert "tvants" in out
