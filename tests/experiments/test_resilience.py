"""Resilient campaign execution: ledger, retry, checkpoint, validation."""

import numpy as np
import pytest

import repro.experiments.campaign as campaign_mod
from repro.errors import SimulationError
from repro.experiments.campaign import CampaignConfig, run_campaign
from repro.faults.plan import ImpairmentPlan

SMALL = dict(duration_s=20.0, seed=3, scale=0.4)


def failing_simulate(fail_app: str, fail_times: int = 10**9):
    """A simulate() stand-in raising for one app a bounded number of times."""
    real = campaign_mod.simulate
    counter = {"n": 0}

    def wrapper(profile, **kwargs):
        if profile.name == fail_app:
            counter["n"] += 1
            if counter["n"] <= fail_times:
                raise SimulationError("injected fault")
        return real(profile, **kwargs)

    return wrapper


class TestFailureIsolation:
    def test_one_bad_app_does_not_sink_the_campaign(self, monkeypatch):
        monkeypatch.setattr(campaign_mod, "simulate", failing_simulate("pplive"))
        campaign = run_campaign(
            CampaignConfig(apps=("pplive", "tvants"), **SMALL)
        )
        assert campaign.failed_apps == ["pplive"]
        assert "tvants" in campaign.runs
        assert not campaign.ok
        [failure] = campaign.failures
        assert (failure.app, failure.stage) == ("pplive", "simulate")
        assert "injected fault" in failure.error
        assert campaign.failures_for("tvants") == []

    def test_retry_with_reseed_recovers(self, monkeypatch):
        monkeypatch.setattr(
            campaign_mod, "simulate", failing_simulate("pplive", fail_times=2)
        )
        campaign = run_campaign(
            CampaignConfig(apps=("pplive",), max_retries=2, **SMALL)
        )
        assert campaign.failed_apps == []
        attempts = [(f.attempt, f.seed) for f in campaign.failures]
        assert [a for a, _ in attempts] == [0, 1]
        # Each retry runs under a distinct seed.
        assert len({s for _, s in attempts}) == 2

    def test_retries_exhausted_lands_in_ledger(self, monkeypatch):
        monkeypatch.setattr(campaign_mod, "simulate", failing_simulate("tvants"))
        campaign = run_campaign(
            CampaignConfig(apps=("tvants",), max_retries=1, **SMALL)
        )
        assert campaign.failed_apps == ["tvants"]
        assert len(campaign.failures) == 2  # initial + one retry


class TestCheckpointResume:
    def test_resume_skips_resimulation(self, tmp_path, monkeypatch):
        cfg = CampaignConfig(
            apps=("tvants",), checkpoint_dir=str(tmp_path), **SMALL
        )
        first = run_campaign(cfg)
        assert first.ok and not first["tvants"].from_checkpoint
        assert (tmp_path / "tvants.npz").exists()

        calls = []
        real = campaign_mod.simulate

        def counting(profile, **kwargs):
            calls.append(profile.name)
            return real(profile, **kwargs)

        monkeypatch.setattr(campaign_mod, "simulate", counting)
        second = run_campaign(cfg)
        assert calls == []
        assert second.ok and second["tvants"].from_checkpoint
        assert np.array_equal(
            first["tvants"].result.transfers, second["tvants"].result.transfers
        )
        assert (
            first["tvants"].report["BW"].download.B
            == second["tvants"].report["BW"].download.B
        )

    def test_failed_app_resumes_only_the_missing_run(self, tmp_path, monkeypatch):
        cfg = CampaignConfig(
            apps=("pplive", "tvants"), checkpoint_dir=str(tmp_path), **SMALL
        )
        real_sim = campaign_mod.simulate
        monkeypatch.setattr(campaign_mod, "simulate", failing_simulate("pplive"))
        partial = run_campaign(cfg)
        assert partial.failed_apps == ["pplive"]
        assert (tmp_path / "tvants.npz").exists()
        assert not (tmp_path / "pplive.npz").exists()

        # Next attempt (healthy simulate): tvants comes from its
        # checkpoint, only pplive is simulated.
        calls = []

        def counting(profile, **kwargs):
            calls.append(profile.name)
            return real_sim(profile, **kwargs)

        monkeypatch.setattr(campaign_mod, "simulate", counting)
        # Serial backend: the assertion observes the parent-process call
        # list, which process-pool workers cannot append to.
        resumed = run_campaign(cfg, backend="serial")
        assert resumed.ok
        assert calls == ["pplive"]
        assert resumed["tvants"].from_checkpoint
        assert not resumed["pplive"].from_checkpoint

    def test_checkpoint_failure_seeds_are_base_seeds(self, tmp_path, monkeypatch):
        """Checkpoint-stage ledger entries record the shard's base seed
        (campaign seed + app index) — never a retry-reseeded engine seed —
        for both the load and the save path (the unification fix)."""
        cfg = CampaignConfig(
            apps=("pplive", "tvants"),
            checkpoint_dir=str(tmp_path),
            max_retries=2,
            **SMALL,
        )
        base_seed = {"pplive": cfg.seed, "tvants": cfg.seed + 1}

        # Save path: tvants needs one reseeded retry (result seed ≠ base
        # seed), then every checkpoint write fails.
        monkeypatch.setattr(
            campaign_mod, "simulate", failing_simulate("tvants", fail_times=1)
        )

        def refuse_save(path, bundle):
            raise OSError("disk full")

        monkeypatch.setattr(campaign_mod, "save_trace_bundle", refuse_save)
        campaign = run_campaign(cfg, backend="serial")
        assert campaign.failed_apps == []
        saves = [f for f in campaign.failures if f.stage == "checkpoint"]
        assert {f.app for f in saves} == {"pplive", "tvants"}
        for f in saves:
            assert f.seed == base_seed[f.app]
        # The retried app's actual engine seed differs from what the
        # ledger records for the checkpoint stage — that is the point.
        assert campaign["tvants"].result.config.seed != base_seed["tvants"]

        # Load path: a stale checkpoint records the same convention.
        monkeypatch.undo()
        run_campaign(cfg)
        stale = CampaignConfig(
            apps=("pplive", "tvants"),
            duration_s=SMALL["duration_s"] + 5.0,
            seed=SMALL["seed"],
            scale=SMALL["scale"],
            checkpoint_dir=str(tmp_path),
        )
        resumed = run_campaign(stale)
        loads = [f for f in resumed.failures if f.stage == "checkpoint"]
        assert {f.app for f in loads} == {"pplive", "tvants"}
        for f in loads:
            assert f.seed == base_seed[f.app]

    @pytest.mark.parametrize(
        "key, value, message",
        [
            ("profile", "pplive", "checkpoint profile"),
            ("duration_s", 999.0, "duration mismatch"),
            ("campaign_scale", 0.9, "scale mismatch"),
            ("world_seed", 12345, "world mismatch"),
            ("impairment_seed", 77, "impairment mismatch"),
        ],
    )
    def test_each_mismatch_branch_forces_resimulation(
        self, tmp_path, monkeypatch, key, value, message
    ):
        """Every guard in ``_load_checkpoint`` — profile, duration, scale,
        world seed, impairment seed — rejects a doctored bundle with a
        checkpoint-stage ledger entry, and the campaign re-simulates to
        the same numbers a fresh run produces."""
        cfg = CampaignConfig(apps=("tvants",), checkpoint_dir=str(tmp_path), **SMALL)
        fresh = run_campaign(cfg)
        assert fresh.ok

        real_load = campaign_mod.load_trace_bundle

        def doctored(path):
            bundle = real_load(path)
            bundle.meta[key] = value
            return bundle

        monkeypatch.setattr(campaign_mod, "load_trace_bundle", doctored)
        # Serial backend so the monkeypatched loader is the one the
        # shard actually calls.
        resumed = run_campaign(cfg, backend="serial")
        assert "tvants" in resumed.runs
        assert not resumed["tvants"].from_checkpoint
        [failure] = [f for f in resumed.failures if f.stage == "checkpoint"]
        assert message in failure.error
        assert np.array_equal(
            resumed["tvants"].result.transfers, fresh["tvants"].result.transfers
        )

    def test_stale_checkpoint_falls_back_to_simulation(self, tmp_path):
        base = CampaignConfig(apps=("tvants",), checkpoint_dir=str(tmp_path), **SMALL)
        run_campaign(base)
        altered = CampaignConfig(
            apps=("tvants",),
            duration_s=30.0,
            seed=3,
            scale=0.4,
            checkpoint_dir=str(tmp_path),
        )
        campaign = run_campaign(altered)
        assert "tvants" in campaign.runs
        assert not campaign["tvants"].from_checkpoint
        assert [f.stage for f in campaign.failures] == ["checkpoint"]


class TestValidationGate:
    def test_healthy_run_passes_gate(self):
        campaign = run_campaign(
            CampaignConfig(apps=("tvants",), validate=True, **SMALL)
        )
        assert campaign.ok

    def test_violations_land_in_ledger(self, monkeypatch):
        import repro.validation as validation_mod
        from repro.validation import Violation

        monkeypatch.setattr(
            validation_mod,
            "validate_result",
            lambda result, **kw: [Violation("test", "synthetic violation")],
        )
        campaign = run_campaign(
            CampaignConfig(apps=("tvants",), validate=True, **SMALL)
        )
        assert campaign.failed_apps == ["tvants"]
        [failure] = campaign.failures
        assert failure.stage == "validate"
        assert "synthetic violation" in failure.error


class TestImpairedCampaign:
    def test_impairment_applies_per_app(self):
        plan = ImpairmentPlan.preset(0.6, seed=5, duration_s=20.0)
        campaign = run_campaign(
            CampaignConfig(apps=("tvants",), impairment=plan, **SMALL)
        )
        assert campaign.ok
        log = campaign.impairment_logs["tvants"]
        assert log.bad_time_fraction > 0.0
        assert log.records_after <= log.records_before

    def test_noop_impairment_matches_plain_run(self):
        plain = run_campaign(CampaignConfig(apps=("tvants",), **SMALL))
        noop = run_campaign(
            CampaignConfig(apps=("tvants",), impairment=ImpairmentPlan(), **SMALL)
        )
        assert np.array_equal(
            plain["tvants"].result.transfers, noop["tvants"].result.transfers
        )
        assert noop.impairment_logs == {}


class TestRobustnessSweep:
    def test_sweep_shapes_and_baseline(self):
        from repro.experiments.robustness import render_robustness, sweep_robustness

        report = sweep_robustness(
            "tvants", severities=(0.0, 1.0), duration_s=20.0, seed=3, scale=0.4
        )
        assert [p.severity for p in report.points] == [0.0, 1.0]
        base = report.baseline
        assert base.severity == 0.0
        assert base.dropped_fraction == 0.0 and base.bad_time_fraction == 0.0
        assert report.points[1].bad_time_fraction > 0.0
        text = render_robustness(report)
        assert "ROBUSTNESS" in text and "max drift" in text
